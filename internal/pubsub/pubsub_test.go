package pubsub_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/pubsub"
)

func publish(t *testing.T, b *pubsub.Broker, topic, typ string, data any) pubsub.Event {
	t.Helper()
	ev, err := b.Publish(topic, typ, data)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// drain reads everything currently queued on the subscription without
// blocking.
func drain(s *pubsub.Sub) []pubsub.Event {
	var out []pubsub.Event
	for {
		select {
		case ev, ok := <-s.Events():
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestPublishSubscribeOrder(t *testing.T) {
	b := pubsub.New(pubsub.Options{})
	s := b.Subscribe("job/x", 0)
	defer s.Close()
	for i := 1; i <= 5; i++ {
		publish(t, b, "job/x", pubsub.TypeProgress, map[string]int{"states": i})
	}
	publish(t, b, "job/x", pubsub.TypeVerdict, map[string]string{"verdict": "verified"})
	evs := drain(s)
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	if evs[5].Type != pubsub.TypeVerdict {
		t.Fatalf("last event type %q, want verdict", evs[5].Type)
	}
}

func TestLastEventIDResume(t *testing.T) {
	b := pubsub.New(pubsub.Options{RingSize: 8})
	for i := 1; i <= 5; i++ {
		publish(t, b, "job/x", pubsub.TypeProgress, i)
	}
	// Resume after seq 3: only 4 and 5 replay.
	s := b.Subscribe("job/x", 3)
	defer s.Close()
	evs := drain(s)
	if len(evs) != 2 || evs[0].Seq != 4 || evs[1].Seq != 5 {
		t.Fatalf("resume after 3 replayed %+v, want seqs 4,5", evs)
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	b := pubsub.New(pubsub.Options{RingSize: 4})
	for i := 1; i <= 10; i++ {
		publish(t, b, "job/x", pubsub.TypeProgress, i)
	}
	publish(t, b, "job/x", pubsub.TypeVerdict, "ok") // seq 11
	s := b.Subscribe("job/x", 0)
	defer s.Close()
	evs := drain(s)
	// Ring depth 4: the oldest replayable is seq 8, and the terminal
	// event is always within the newest ring entries.
	if len(evs) != 4 || evs[0].Seq != 8 || evs[3].Type != pubsub.TypeVerdict {
		t.Fatalf("overflowed ring replayed %+v, want seqs 8..11 ending in verdict", evs)
	}
}

func TestSlowConsumerEvicted(t *testing.T) {
	b := pubsub.New(pubsub.Options{RingSize: 2, QueueSize: 4})
	s := b.Subscribe("job/x", 0)
	// Publish past the queue depth without reading: the subscriber must
	// be evicted and every publish must return instantly.
	for i := 0; i < 10; i++ {
		publish(t, b, "job/x", pubsub.TypeProgress, i)
	}
	// The channel closes after eviction; drain what was queued.
	var got int
	for range s.Events() {
		got++
	}
	if !s.Evicted() {
		t.Fatal("slow subscriber not evicted")
	}
	if got != 4 {
		t.Fatalf("evicted subscriber drained %d events, want the 4 queued", got)
	}
	if b.Evictions() != 1 {
		t.Fatalf("evictions counter %d, want 1", b.Evictions())
	}
	// A fresh subscriber still works: eviction is per-subscription.
	s2 := b.Subscribe("job/x", 0)
	defer s2.Close()
	if evs := drain(s2); len(evs) != 2 {
		t.Fatalf("fresh subscriber replayed %d events, want ring depth 2", len(evs))
	}
}

func TestTopicRetiresAfterTerminalAndLastClose(t *testing.T) {
	b := pubsub.New(pubsub.Options{})
	s := b.Subscribe("job/x", 0)
	publish(t, b, "job/x", pubsub.TypeVerdict, "ok")
	if n := b.Topics(); n != 1 {
		t.Fatalf("topics %d, want 1", n)
	}
	s.Close()
	if n := b.Topics(); n != 0 {
		t.Fatalf("topics after terminal close %d, want 0 (retired)", n)
	}
	// A live (non-done) topic survives its subscribers detaching.
	s2 := b.Subscribe("job/y", 0)
	publish(t, b, "job/y", pubsub.TypeProgress, 1)
	s2.Close()
	if n := b.Topics(); n != 1 {
		t.Fatalf("live topic retired early: topics %d, want 1", n)
	}
}

func TestMaxTopicsEvictsSubscriberless(t *testing.T) {
	b := pubsub.New(pubsub.Options{MaxTopics: 4})
	held := b.Subscribe("keep", 0)
	defer held.Close()
	for i := 0; i < 20; i++ {
		publish(t, b, fmt.Sprintf("t%d", i), pubsub.TypeProgress, i)
	}
	if n := b.Topics(); n > 5 {
		t.Fatalf("topics %d, want <= MaxTopics+held", n)
	}
	// The subscribed topic must never be the eviction victim.
	publish(t, b, "keep", pubsub.TypeProgress, 1)
	if evs := drain(held); len(evs) != 1 {
		t.Fatalf("held subscription lost its topic: %d events", len(evs))
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := pubsub.New(pubsub.Options{QueueSize: 4096})
	const pubs, events = 4, 200
	var wg sync.WaitGroup
	s := b.Subscribe("job/x", 0)
	defer s.Close()
	for p := 0; p < pubs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				publish(t, b, "job/x", pubsub.TypeProgress, i)
			}
		}()
	}
	wg.Wait()
	evs := drain(s)
	if len(evs) != pubs*events {
		t.Fatalf("got %d events, want %d", len(evs), pubs*events)
	}
	// Seqs are the contiguous 1..N range in delivery order.
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d: delivery order diverged from publish order", i, ev.Seq)
		}
	}
}

func TestSSERoundTrip(t *testing.T) {
	events := []pubsub.Event{
		{Seq: 1, Type: "progress", Data: json.RawMessage(`{"states":42,"depth":3}`)},
		{Seq: 2, Type: "verdict", Data: json.RawMessage(`{"verdict":"verified"}`)},
		{Seq: 0, Type: "cell", Data: json.RawMessage(`"synthesized"`)}, // no id line
		{Seq: 9, Type: "failed", Data: json.RawMessage(`{"error":"line1\nline2"}`)},
	}
	var wire []byte
	for _, ev := range events {
		wire = pubsub.AppendSSE(wire, ev)
	}
	d := pubsub.NewDecoder(bytes.NewReader(wire))
	for i, want := range events {
		got, err := d.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Type != want.Type || string(got.Data) != string(want.Data) {
			t.Fatalf("event %d round-tripped to %+v, want %+v", i, got, want)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("trailing read err %v, want EOF", err)
	}
}

func TestSSEDecoderTolerance(t *testing.T) {
	// Comments, \r\n endings, unknown fields and stray blank lines are
	// all legal SSE the decoder must skip.
	wire := ": keepalive\r\n\r\nretry: 100\r\nid: 3\r\nevent: progress\r\ndata: {}\r\n\r\n"
	d := pubsub.NewDecoder(strings.NewReader(wire))
	ev, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 3 || ev.Type != "progress" || string(ev.Data) != "{}" {
		t.Fatalf("decoded %+v", ev)
	}
}

func TestSSEDecoderRejects(t *testing.T) {
	for name, wire := range map[string]string{
		"no type":        "id: 1\ndata: {}\n\n",
		"no data":        "id: 1\nevent: x\n\n",
		"bad id":         "id: -4\nevent: x\ndata: {}\n\n",
		"zero id":        "id: 0\nevent: x\ndata: {}\n\n",
		"huge id":        "id: 99999999999999999999\nevent: x\ndata: {}\n\n",
		"bad type chars": "id: 1\nevent: X;rm -rf\ndata: {}\n\n",
		"digit-led type": "id: 1\nevent: 9x\ndata: {}\n\n",
		"long type":      "id: 1\nevent: " + strings.Repeat("a", 65) + "\ndata: {}\n\n",
		"non-json data":  "id: 1\nevent: x\ndata: {not json\n\n",
		"torn frame":     "id: 1\nevent: x\ndata: {}",
		"oversized line": "id: " + strings.Repeat("7", 5000) + "\nevent: x\ndata: {}\n\n",
	} {
		t.Run(name, func(t *testing.T) {
			d := pubsub.NewDecoder(strings.NewReader(wire))
			if ev, err := d.Next(); err == nil {
				t.Fatalf("decoded %+v, want error", ev)
			}
		})
	}
}

// TestSSELargeData pins the big-payload path: a single-line JSON data
// value larger than the decoder's internal buffer (a verdict result
// with traces) must round-trip, while one past MaxEventData must be
// rejected.
func TestSSELargeData(t *testing.T) {
	big := `{"blob":"` + strings.Repeat("x", 64<<10) + `"}`
	wire := pubsub.AppendSSE(nil, pubsub.Event{Seq: 1, Type: "verdict", Data: json.RawMessage(big)})
	ev, err := pubsub.NewDecoder(bytes.NewReader(wire)).Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(ev.Data) != big {
		t.Fatal("large data did not round-trip")
	}

	over := "id: 1\nevent: x\ndata: " + strings.Repeat("y", pubsub.MaxEventData+2) + "\n\n"
	if _, err := pubsub.NewDecoder(strings.NewReader(over)).Next(); err == nil {
		t.Fatal("oversized data accepted")
	}
}
