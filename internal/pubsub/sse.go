// SSE wire codec: the framing every pubsub event travels in, whether
// down a /v1/jobs/{id}/watch response or inside a gossip announce
// body. One encoder, one decoder, both bounded — the decoder is the
// fuzzed attack surface (FuzzEventDecode), so it allocates
// proportionally to what it has actually read and validates every
// semantic range before returning an event.
package pubsub

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Decoder bounds. A verdict event carries a full explore.Result —
// counterexample traces included — so data is megabytes at most;
// anything past these bounds is hostile or broken framing.
const (
	// MaxEventData caps one event's accumulated data bytes.
	MaxEventData = 8 << 20
	// maxTypeLen caps the event-type token.
	maxTypeLen = 64
	// maxFieldLine caps any single non-data line (id:, event:,
	// comments, unknown fields).
	maxFieldLine = 4096
)

// AppendSSE renders one event as an SSE frame:
//
//	id: <seq>
//	event: <type>
//	data: <json>
//	<blank>
//
// The id line is omitted for Seq 0 (synthesized events must not move
// the client's Last-Event-ID watermark). Multi-line data is split on
// newlines into consecutive data: lines per the SSE grammar; the
// decoder rejoins them.
func AppendSSE(dst []byte, ev Event) []byte {
	if ev.Seq > 0 {
		dst = append(dst, "id: "...)
		dst = strconv.AppendUint(dst, ev.Seq, 10)
		dst = append(dst, '\n')
	}
	dst = append(dst, "event: "...)
	dst = append(dst, ev.Type...)
	dst = append(dst, '\n')
	for _, line := range bytes.Split(ev.Data, []byte{'\n'}) {
		dst = append(dst, "data: "...)
		dst = append(dst, line...)
		dst = append(dst, '\n')
	}
	return append(dst, '\n')
}

// validType enforces the event-type token grammar: a short
// lower-case identifier, nothing an attacker can smuggle framing or
// terminal escapes through.
func validType(t string) bool {
	if len(t) == 0 || len(t) > maxTypeLen {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '-' || c == '_':
		default:
			return false
		}
		if i == 0 && !(c >= 'a' && c <= 'z') {
			return false
		}
	}
	return true
}

// Decoder reads SSE frames back into events. It tolerates the parts
// of the SSE grammar we do not emit (comment lines, retry:, unknown
// fields, \r\n endings) and rejects — with an error, never a panic or
// an unbounded allocation — torn framing, oversized lines, invalid
// sequence ids, malformed type tokens and non-JSON data.
type Decoder struct {
	r *bufio.Reader
}

// NewDecoder wraps r. The internal buffer is fixed-size; lines longer
// than the per-field bounds error out rather than growing it.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, 16<<10)}
}

// readLine returns the next line (without the terminator), enforcing
// limit. Long lines are accumulated a buffer-full at a time, so the
// allocation grows with bytes actually read and stops at the limit —
// a claimed gigabyte line costs at most limit bytes, never a
// speculative gigabyte.
func (d *Decoder) readLine(limit int) ([]byte, error) {
	var out []byte
	for {
		frag, err := d.r.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			if len(out)+len(frag) > limit {
				return nil, fmt.Errorf("pubsub: SSE line exceeds %d bytes", limit)
			}
			out = append(out, frag...)
			continue
		}
		if err != nil {
			if err == io.EOF && (len(out) > 0 || len(frag) > 0) {
				return nil, io.ErrUnexpectedEOF // torn frame at EOF
			}
			return nil, err
		}
		line := frag
		if out != nil {
			line = append(out, frag...)
		}
		line = line[:len(line)-1]
		if len(line) > limit {
			return nil, fmt.Errorf("pubsub: SSE line exceeds %d bytes", limit)
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		return line, nil
	}
}

// Next decodes the next event. io.EOF at a frame boundary means the
// stream ended cleanly; any other error is a framing or semantic
// violation.
func (d *Decoder) Next() (Event, error) {
	var (
		ev      Event
		data    []byte
		sawAny  bool
		sawData bool
	)
	for {
		limit := maxFieldLine
		if peek, _ := d.r.Peek(5); bytes.HasPrefix(peek, []byte("data:")) {
			limit = MaxEventData
		}
		line, err := d.readLine(limit)
		if err != nil {
			if err == io.EOF && sawAny {
				return Event{}, io.ErrUnexpectedEOF // fields but no blank-line dispatch
			}
			return Event{}, err
		}
		if len(line) == 0 {
			if !sawAny {
				continue // stray blank line between frames
			}
			break // frame complete
		}
		if line[0] == ':' {
			continue // comment / keepalive
		}
		sawAny = true
		field, value, _ := bytes.Cut(line, []byte{':'})
		value = bytes.TrimPrefix(value, []byte{' '})
		switch string(field) {
		case "id":
			seq, err := strconv.ParseUint(string(value), 10, 64)
			if err != nil || seq == 0 {
				return Event{}, fmt.Errorf("pubsub: bad SSE id %q", value)
			}
			ev.Seq = seq
		case "event":
			if !validType(string(value)) {
				return Event{}, fmt.Errorf("pubsub: bad SSE event type %q", value)
			}
			ev.Type = string(value)
		case "data":
			if sawData {
				data = append(data, '\n')
			}
			if len(data)+len(value) > MaxEventData {
				return Event{}, fmt.Errorf("pubsub: SSE data exceeds %d bytes", MaxEventData)
			}
			data = append(data, value...)
			sawData = true
		default:
			// Unknown fields (retry:, future extensions) are skipped per
			// the SSE grammar.
		}
	}
	if ev.Type == "" {
		return Event{}, fmt.Errorf("pubsub: SSE frame without an event type")
	}
	if !sawData {
		return Event{}, fmt.Errorf("pubsub: SSE frame without data")
	}
	if !json.Valid(data) {
		return Event{}, fmt.Errorf("pubsub: SSE data is not valid JSON")
	}
	ev.Data = json.RawMessage(data)
	return ev, nil
}
