// The cluster tier: ccserve as one peer of a distributed exploration.
// A coordinator (cccheck -peers, or campaign.ExecuteCluster) opens a
// job here with POST /v1/cluster/rpc {op:"open"}, after which this
// process hosts one shard of the partitioned visited set, expands its
// slice of every BFS layer on command, ships successors it does not
// own to the owning peers as binary frames (POST /v1/cluster/frontier
// on the destination), and persists its shard snapshot into the
// verdict store at every layer barrier so the coordinator can migrate
// the shard to a surviving peer (POST /v1/cluster/adopt) if this one
// dies. The control plane is cluster.RPCRequest/RPCResponse; the
// byte-identity contract is pinned by the cluster differential
// battery and the 3-peer CI smoke.

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/explore"
	"repro/internal/store"
)

// Request-body bounds for the cluster tier: the control plane carries
// commit gid arrays (bounded by MaxStatesCap states ≈ tens of MB of
// JSON at the default cap), the data plane carries flush-bounded
// binary frames.
const (
	maxClusterRPCBytes   = 256 << 20
	maxClusterFrameBytes = 64 << 20
)

// clusterPeer is one open distributed job on this server.
type clusterPeer struct {
	job    string
	self   int
	peers  []string
	engine explore.PeerEngine
}

// frameClient posts frontier frames peer-to-peer; expansion RPCs can
// outlive it by design — a frame either lands quickly or the send
// fails and the coordinator retries the layer.
var frameClient = &http.Client{Timeout: 30 * time.Second}

// clusterError writes the error envelope and bumps the cluster error
// counter — one signal for the operator that a coordinator and this
// peer are disagreeing.
func (s *Server) clusterError(w http.ResponseWriter, code int, format string, args ...any) {
	s.mu.Lock()
	s.clusterErrors++
	s.mu.Unlock()
	writeError(w, code, format, args...)
}

func (s *Server) getClusterJob(job string) *clusterPeer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clusterJobs[job]
}

// handleClusterRPC is the control plane: one op-discriminated POST per
// coordinator call. Errors return the usual envelope; the coordinator
// treats an expansion error as peer loss and anything else as fatal.
func (s *Server) handleClusterRPC(w http.ResponseWriter, r *http.Request) {
	var req cluster.RPCRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxClusterRPCBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.clusterError(w, http.StatusBadRequest, "bad cluster rpc: %v", err)
		return
	}
	if req.Job == "" {
		s.clusterError(w, http.StatusBadRequest, "bad cluster rpc: missing job key")
		return
	}
	switch req.Op {
	case "open":
		s.handleClusterOpen(w, req)
		return
	case "seed", "expand", "finish", "pendmeta", "commit", "keys", "snapshot", "rollback", "route", "close":
	default:
		s.clusterError(w, http.StatusBadRequest, "unknown cluster op %q", req.Op)
		return
	}
	cp := s.getClusterJob(req.Job)
	if cp == nil {
		s.clusterError(w, http.StatusNotFound, "no open cluster job %q on this peer", req.Job)
		return
	}
	var out cluster.RPCResponse
	var err error
	switch req.Op {
	case "seed":
		err = cp.engine.Seed()
	case "expand":
		out.Report, err = cp.engine.Expand(req.Depth, req.FirstGid, req.AtCap)
	case "finish":
		out.Cap = cp.engine.FinishLayer()
	case "pendmeta":
		out.Meta, err = cp.engine.PendMeta(req.Shard)
		if out.Meta == nil {
			out.Meta = []explore.PendMeta{}
		}
	case "commit":
		err = cp.engine.Commit(req.Shard, req.Keep, req.Gids, req.Housekeep)
	case "keys":
		out.Keys, err = cp.engine.Keys(req.Shard, req.Gids)
	case "snapshot":
		ck := s.cfg.Store.Checkpoint(cluster.SnapshotKey(req.Job, req.Shard))
		err = ck.Save(func(w io.Writer) error { return cp.engine.SnapshotShard(req.Shard, w) })
	case "rollback":
		err = cp.engine.Rollback()
	case "route":
		err = cp.engine.SetRoute(req.Route)
	case "close":
		s.closeClusterJob(req.Job)
	}
	if err != nil {
		s.clusterError(w, http.StatusInternalServerError, "cluster %s: %v", req.Op, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleClusterOpen validates the forwarded spec with the same checks
// a direct submission gets (including the server's state-bound cap)
// and builds this peer's engine through the shared job runner, so the
// distributed check is provably the same problem.
func (s *Server) handleClusterOpen(w http.ResponseWriter, req cluster.RPCRequest) {
	var spec store.JobSpec
	dec := json.NewDecoder(bytes.NewReader(req.Spec))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.clusterError(w, http.StatusBadRequest, "bad cluster job spec: %v", err)
		return
	}
	c, err := s.validateSpec(spec)
	if err != nil {
		s.clusterError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.NShards < 1 || req.Self < 0 || req.Self >= req.NShards || len(req.Peers) != req.NShards {
		s.clusterError(w, http.StatusBadRequest,
			"bad cluster topology: nshards=%d self=%d peers=%d", req.NShards, req.Self, len(req.Peers))
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.JobWorkers
	}
	engine, err := campaign.NewPeerEngine(c, campaign.ExecOptions{
		Workers: workers, MemBudget: s.cfg.MemBudget, SpillDir: s.cfg.SpillDir, FS: s.cfg.FS,
	}, explore.PeerConfig{NShards: req.NShards, Hosted: []int{req.Self}, Self: req.Self})
	if err != nil {
		s.clusterError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cp := &clusterPeer{job: req.Job, self: req.Self, peers: req.Peers, engine: engine}
	engine.SetSender(func(dst int, frame []byte) error { return cp.sendFrame(dst, frame) })

	s.mu.Lock()
	old := s.clusterJobs[req.Job]
	s.clusterJobs[req.Job] = cp
	s.clusterOpens++
	s.mu.Unlock()
	if old != nil {
		// A re-open replaces a stale engine (coordinator retry after a
		// crash); the old one's shards are rebuilt from snapshots anyway.
		old.engine.Close()
	}
	s.logf("cluster job %s open: shard %d of %d", shortKey(req.Job), req.Self, req.NShards)
	writeJSON(w, http.StatusOK, cluster.RPCResponse{})
}

func (cp *clusterPeer) sendFrame(dst int, frame []byte) error {
	if dst < 0 || dst >= len(cp.peers) {
		return fmt.Errorf("serve: frame for unknown peer %d", dst)
	}
	resp, err := frameClient.Post(cluster.FrontierURL(cp.peers[dst], cp.job),
		"application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: frame to peer %d: %s", dst, resp.Status)
	}
	return nil
}

func (s *Server) closeClusterJob(job string) {
	s.mu.Lock()
	cp := s.clusterJobs[job]
	delete(s.clusterJobs, job)
	s.mu.Unlock()
	if cp != nil {
		cp.engine.Close()
		s.logf("cluster job %s closed", shortKey(job))
	}
}

// shortKey abbreviates a job key for log lines; coordinator-chosen
// keys are usually content hashes but any string is legal.
func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

// handleClusterFrontier is the data plane: a raw binary frontier frame
// from a sibling peer, ingested into the pending set of the shard it
// addresses. Malformed frames are a 400 (the codec validates magic,
// version, word width, counts and bounds); frames for shards this peer
// does not host are a 409 — the sender is routing on a stale table and
// will fail its layer, which the coordinator retries.
func (s *Server) handleClusterFrontier(w http.ResponseWriter, r *http.Request) {
	job := r.URL.Query().Get("job")
	if job == "" {
		s.clusterError(w, http.StatusBadRequest, "missing job query parameter")
		return
	}
	cp := s.getClusterJob(job)
	if cp == nil {
		s.clusterError(w, http.StatusNotFound, "no open cluster job %q on this peer", job)
		return
	}
	frame, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxClusterFrameBytes))
	if err != nil {
		s.clusterError(w, http.StatusBadRequest, "reading frame: %v", err)
		return
	}
	if err := cp.engine.Ingest(frame); err != nil {
		s.clusterError(w, http.StatusConflict, "ingest: %v", err)
		return
	}
	s.mu.Lock()
	s.clusterFramesIn++
	s.clusterFrameBytes += int64(len(frame))
	s.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

// handleClusterAdopt restores a shard from its snapshot in the shared
// store and hosts it here from the next layer on.
func (s *Server) handleClusterAdopt(w http.ResponseWriter, r *http.Request) {
	var req cluster.AdoptRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.clusterError(w, http.StatusBadRequest, "bad adopt request: %v", err)
		return
	}
	cp := s.getClusterJob(req.Job)
	if cp == nil {
		s.clusterError(w, http.StatusNotFound, "no open cluster job %q on this peer", req.Job)
		return
	}
	ck := s.cfg.Store.Checkpoint(cluster.SnapshotKey(req.Job, req.Shard))
	rc, err := ck.Load()
	if err != nil {
		s.clusterError(w, http.StatusInternalServerError, "loading shard snapshot: %v", err)
		return
	}
	if rc == nil {
		s.clusterError(w, http.StatusNotFound, "no snapshot for job %q shard %d in the store", req.Job, req.Shard)
		return
	}
	defer rc.Close()
	if err := cp.engine.AdoptShard(req.Shard, rc); err != nil {
		s.clusterError(w, http.StatusInternalServerError, "adopting shard %d: %v", req.Shard, err)
		return
	}
	s.mu.Lock()
	s.clusterAdoptions++
	s.mu.Unlock()
	s.logf("cluster job %s: adopted shard %d", shortKey(req.Job), req.Shard)
	writeJSON(w, http.StatusOK, cluster.RPCResponse{})
}

// clusterJobView is one open distributed job in the status report.
type clusterJobView struct {
	Job    string `json:"job"`
	Self   int    `json:"self"`
	Hosted []int  `json:"hosted"`
	States int    `json:"states"`
}

// handleClusterStatus reports this peer's cluster configuration and
// its open distributed jobs.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	peers := s.cfg.Peers
	views := make([]clusterJobView, 0, len(s.clusterJobs))
	for _, cp := range s.clusterJobs {
		views = append(views, clusterJobView{
			Job: cp.job, Self: cp.self, Hosted: cp.engine.Hosted(), States: cp.engine.States(),
		})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"peers": peers, "jobs": views})
}
