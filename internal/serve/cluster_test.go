package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/store"
)

// TestClusterHTTPEndToEnd boots three real servers sharing one store
// directory, distributes a job across them through the public
// /v1/cluster API, and pins the verdict byte-identical to a
// single-node execution of the same spec — the in-process version of
// the CI smoke's 3-peer cmp.
func TestClusterHTTPEndToEnd(t *testing.T) {
	dir := t.TempDir()
	peers := make([]string, 3)
	servers := make([]*httptest.Server, 3)
	for i := range peers {
		ts := newTestServer(t, dir)
		peers[i] = ts.URL
		servers[i] = ts
	}

	spec := store.JobSpec{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "cc"}
	want, err := campaign.ExecuteOpts(context.Background(), spec, campaign.ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	got, err := campaign.ExecuteCluster(context.Background(), spec, peers, campaign.ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("cluster verdict differs from single-node:\n%s\nvs\n%s", gotJSON, wantJSON)
	}

	// The run really was distributed: frontier frames crossed the wire
	// into at least one peer, every peer opened the job, and close left
	// no engine behind.
	totalFrames := 0.0
	for _, sv := range servers {
		totalFrames += metric(t, sv, "ccserve_cluster_frames_in_total")
		if n := metric(t, sv, "ccserve_cluster_opens_total"); n != 1 {
			t.Fatalf("peer opened %g cluster jobs, want 1", n)
		}
		if n := metric(t, sv, "ccserve_cluster_jobs_open"); n != 0 {
			t.Fatalf("peer still has %g cluster jobs open after close", n)
		}
	}
	if totalFrames == 0 {
		t.Fatal("no frontier frames crossed the wire: the run was not distributed")
	}
}

// TestClusterEndpointErrors drives each cluster endpoint's refusal
// paths and asserts the error counter moves: the cluster tier must
// reject garbage loudly, not wedge a distributed layer.
func TestClusterEndpointErrors(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	errsBefore := metric(t, ts, "ccserve_cluster_errors_total")

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	for _, tc := range []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed rpc json", "/v1/cluster/rpc", "{not json", http.StatusBadRequest},
		{"unknown rpc field", "/v1/cluster/rpc", `{"op":"seed","job":"k","bogus":1}`, http.StatusBadRequest},
		{"missing job", "/v1/cluster/rpc", `{"op":"seed"}`, http.StatusBadRequest},
		{"unknown op", "/v1/cluster/rpc", `{"op":"warp","job":"k"}`, http.StatusBadRequest},
		{"rpc before open", "/v1/cluster/rpc", `{"op":"seed","job":"nope"}`, http.StatusNotFound},
		{"open with bad spec", "/v1/cluster/rpc", `{"op":"open","job":"k","spec":{"alg":"quantum"},"nshards":1,"self":0,"peers":["x"]}`, http.StatusBadRequest},
		{"open with bad topology", "/v1/cluster/rpc", `{"op":"open","job":"k","spec":{"alg":"cc2","topo":"ring:3","daemon":"central","init":"legit"},"nshards":2,"self":5,"peers":["a","b"]}`, http.StatusBadRequest},
		{"frontier without job", "/v1/cluster/frontier", "xx", http.StatusBadRequest},
		{"frontier unknown job", "/v1/cluster/frontier?job=nope", "xx", http.StatusNotFound},
		{"adopt malformed", "/v1/cluster/adopt", "{", http.StatusBadRequest},
		{"adopt unknown job", "/v1/cluster/adopt", `{"job":"nope","shard":0}`, http.StatusNotFound},
	} {
		if code := post(tc.path, tc.body); code != tc.want {
			t.Fatalf("%s: got %d, want %d", tc.name, code, tc.want)
		}
	}

	// Method not allowed on every cluster route (GET where POST is
	// required and vice versa).
	for _, m := range []struct{ method, path string }{
		{http.MethodGet, "/v1/cluster/rpc"},
		{http.MethodGet, "/v1/cluster/frontier"},
		{http.MethodGet, "/v1/cluster/adopt"},
		{http.MethodPost, "/v1/cluster/status"},
	} {
		req, err := http.NewRequest(m.method, ts.URL+m.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: got %d, want 405", m.method, m.path, resp.StatusCode)
		}
	}

	if after := metric(t, ts, "ccserve_cluster_errors_total"); after <= errsBefore {
		t.Fatalf("cluster error counter did not move: %g -> %g", errsBefore, after)
	}

	// A garbage frame against an OPEN job must be a 400 from the codec
	// validators, never a panic or a silent accept.
	openBody := `{"op":"open","job":"k","spec":{"alg":"cc2","topo":"ring:3","daemon":"central","init":"legit"},"nshards":1,"self":0,"peers":["` + ts.URL + `"]}`
	if code := post("/v1/cluster/rpc", openBody); code != http.StatusOK {
		t.Fatalf("open: got %d", code)
	}
	if code := post("/v1/cluster/frontier?job=k", "garbage-frame-bytes"); code != http.StatusBadRequest && code != http.StatusConflict {
		t.Fatalf("garbage frame: got %d, want 400 or 409", code)
	}
	if code := post("/v1/cluster/rpc", `{"op":"close","job":"k"}`); code != http.StatusOK {
		t.Fatalf("close: got %d", code)
	}
}
