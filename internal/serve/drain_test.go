package serve_test

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// TestDrainCheckpointsAndResumes: shutting a server down mid-job
// persists a snapshot under the job's content key; a fresh server over
// the same store resumes the job on resubmission and serves the same
// verdict an uninterrupted server would.
func TestDrainCheckpointsAndResumes(t *testing.T) {
	dir := t.TempDir()
	spec := map[string]any{
		"alg": "token-ring", "topo": "ring:6", "daemon": "central", "max_states": 60_000,
	}
	key := store.JobSpec{Alg: "token-ring", Topo: "ring:6", Daemon: "central", MaxStates: 60_000}.Key()
	ckptPath := filepath.Join(dir, "checkpoints", key[:2], key+".ckpt")

	newSrv := func() (*serve.Server, *httptest.Server) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s, err := serve.New(serve.Config{Store: st, Jobs: 1, JobWorkers: 2, CheckpointEvery: 2000})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		return s, ts
	}

	s1, ts1 := newSrv()
	code, v, _ := postJSON(t, ts1.URL+"/v1/jobs", spec)
	if code != 202 {
		t.Fatalf("submit: %d %v", code, v)
	}
	// Wait for the first snapshot, then drain: the running job must
	// notice, checkpoint, and stop.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if _, err := os.Stat(ckptPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !s1.Drain(time.Minute) {
		t.Fatal("drain timed out")
	}
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("checkpoint missing after drain: %v", err)
	}
	if m := metric(t, ts1, "ccserve_jobs_interrupted_total"); m != 1 {
		t.Fatalf("interrupted metric = %v, want 1", m)
	}

	// A fresh process over the same store resumes and completes.
	_, ts2 := newSrv()
	code, v, _ = postJSON(t, ts2.URL+"/v1/jobs", spec)
	if code != 202 {
		t.Fatalf("resubmit: %d %v", code, v)
	}
	id := v["id"].(string)
	var status string
	for time.Now().Before(deadline) {
		_, body := get(t, ts2.URL+"/v1/jobs/"+id)
		var jv map[string]any
		json.Unmarshal(body, &jv)
		status, _ = jv["status"].(string)
		if status == "done" || status == "failed" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status != "done" {
		t.Fatalf("resumed job status %q", status)
	}
	if m := metric(t, ts2, "ccserve_jobs_resumed_total"); m != 1 {
		t.Fatalf("resumed metric = %v, want 1", m)
	}
	if m := metric(t, ts2, "ccserve_states_resumed_total"); m <= 0 {
		t.Fatalf("states_resumed metric = %v, want > 0", m)
	}
	// The verdict matches an uninterrupted run (separate store) and the
	// snapshot is gone.
	_, body := get(t, ts2.URL+"/v1/jobs/"+id+"/result")
	cleanDir := t.TempDir()
	stClean, err := store.Open(cleanDir)
	if err != nil {
		t.Fatal(err)
	}
	sClean, err := serve.New(serve.Config{Store: stClean, Jobs: 1, JobWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tsClean := httptest.NewServer(sClean)
	t.Cleanup(tsClean.Close)
	postJSON(t, tsClean.URL+"/v1/jobs", spec)
	var cleanBody []byte
	for time.Now().Before(deadline) {
		_, b := get(t, tsClean.URL+"/v1/jobs/"+id)
		var jv map[string]any
		json.Unmarshal(b, &jv)
		if st, _ := jv["status"].(string); st == "done" {
			_, cleanBody = get(t, tsClean.URL+"/v1/jobs/"+id+"/result")
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if string(cleanBody) == "" {
		t.Fatal("clean run never finished")
	}
	if string(body) != string(cleanBody) {
		t.Fatalf("resumed verdict differs from clean run:\n%s\nvs\n%s", body, cleanBody)
	}
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survives completion: %v", err)
	}
	if !strings.EqualFold(id, key) {
		t.Fatalf("job id %s != expected key %s", id, key)
	}
}
