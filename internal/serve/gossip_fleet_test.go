package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/gossip"
	"repro/internal/serve"
	"repro/internal/store"
)

// fleetPeer is one ccserve node in a gossiping fleet: its own store,
// its own gossip node, wired through an atomic pointer because the
// httptest listener must exist (to know the URL) before the server
// that handles its requests does.
type fleetPeer struct {
	ts   *httptest.Server
	st   store.Interface
	node *gossip.Node
	sv   atomic.Pointer[serve.Server]
}

// newFleet builds n full-mesh gossiping serve peers, each with an
// empty store. The gossip loop is disabled (Interval -1); tests drive
// convergence with syncFleet.
func newFleet(t *testing.T, n int) []*fleetPeer {
	t.Helper()
	peers := make([]*fleetPeer, n)
	urls := make([]string, n)
	for i := range peers {
		p := &fleetPeer{}
		p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sv := p.sv.Load()
			if sv == nil {
				http.Error(w, "peer not wired yet", http.StatusServiceUnavailable)
				return
			}
			sv.ServeHTTP(w, r)
		}))
		t.Cleanup(p.ts.Close)
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		p.st = st
		peers[i] = p
		urls[i] = p.ts.URL
	}
	for i, p := range peers {
		var neighbors []string
		for j, u := range urls {
			if j != i {
				neighbors = append(neighbors, u)
			}
		}
		pp := p
		p.node = gossip.New(gossip.Config{
			Self: urls[i], Neighbors: neighbors, Store: p.st, Interval: -1,
			OnIngest: func(key string) {
				if sv := pp.sv.Load(); sv != nil {
					sv.GossipIngested(key)
				}
			},
		})
		t.Cleanup(p.node.Close)
		sv, err := serve.New(serve.Config{Store: p.st, Jobs: 2, JobWorkers: 1, Gossip: p.node})
		if err != nil {
			t.Fatal(err)
		}
		p.sv.Store(sv)
	}
	return peers
}

// syncFleet drives gossip rounds until every peer's store holds at
// least want entries (fetches are asynchronous behind Sync).
func syncFleet(t *testing.T, peers []*fleetPeer, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		full := true
		for _, p := range peers {
			p.node.Sync()
			if p.st.Len() < want {
				full = false
			}
		}
		if full {
			return
		}
		if time.Now().After(deadline) {
			for i, p := range peers {
				t.Logf("peer %d: %d/%d entries", i, p.st.Len(), want)
			}
			t.Fatal("fleet did not converge")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestFleetGossipDifferential is the distributed-identity battery for
// the push plane: a 3-peer fleet connected only by verdict gossip runs
// the CC grid on one peer, and after convergence every peer serves
// byte-identical result bytes — equal to a single-node run of the same
// cells — and repeat submissions are store hits fleet-wide, with zero
// quarantined entries.
func TestFleetGossipDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet battery")
	}
	peers := newFleet(t, 3)

	grid := map[string]any{
		"algs": []string{"cc1", "cc2"}, "topos": []string{"ring:3"},
		"daemons": []string{"central", "synchronous"}, "inits": []string{"legit"},
	}
	_, v, _ := postJSON(t, peers[0].ts.URL+"/v1/campaigns", grid)
	cid, _ := v["id"].(string)
	if cid == "" {
		t.Fatalf("no campaign id: %v", v)
	}

	// Run the whole grid to completion on peer 0.
	var cv campaignView
	for deadline := time.Now().Add(60 * time.Second); ; {
		_, raw := get(t, peers[0].ts.URL+"/v1/campaigns/"+cid)
		cv = campaignView{}
		if err := json.Unmarshal(raw, &cv); err != nil {
			t.Fatal(err)
		}
		if cv.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never finished: %s", raw)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if cv.Failed != 0 || len(cv.Results) != 4 {
		t.Fatalf("grid on peer 0: %+v", cv)
	}

	// Gossip the verdicts across the fleet.
	syncFleet(t, peers, len(cv.Results))

	// Every cell: byte-identical /result on all three peers, equal to
	// the single-node oracle's canonical encoding.
	for _, cell := range cv.Results {
		want, err := campaign.ExecuteOpts(context.Background(), cell.Spec, campaign.ExecOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range peers {
			code, raw := get(t, p.ts.URL+"/v1/jobs/"+cell.ID+"/result")
			if code != http.StatusOK {
				t.Fatalf("peer %d cell %s: result status %d", i, cell.ID[:12], code)
			}
			if !bytes.Equal(raw, wantJSON) {
				t.Fatalf("peer %d cell %s diverges from single-node:\n%s\nvs\n%s", i, cell.ID[:12], raw, wantJSON)
			}
		}
	}

	// A completed job on one peer is a store hit fleet-wide: repeats on
	// peers that never ran anything come back cached and done.
	for _, p := range peers[1:] {
		for _, cell := range cv.Results {
			_, rv, raw := postJSON(t, p.ts.URL+"/v1/jobs", cell.Spec)
			if rv["cached"] != true || rv["status"] != serve.StatusDone {
				t.Fatalf("gossiped verdict not a store hit: %s", raw)
			}
		}
	}

	// Ingest integrity: everything arrived verified, nothing quarantined.
	for i, p := range peers {
		if n := p.st.Quarantined(); n != 0 {
			t.Fatalf("peer %d quarantined %d entries on a clean fleet", i, n)
		}
		if i > 0 {
			if n := p.node.Ingested(); n < int64(len(cv.Results)) {
				t.Fatalf("peer %d ingested %d, want >= %d", i, n, len(cv.Results))
			}
			if m := metric(t, p.ts, "ccserve_gossip_ingested_total"); m < float64(len(cv.Results)) {
				t.Fatalf("peer %d ccserve_gossip_ingested_total = %g", i, m)
			}
		}
		if p.node.Corrupt() != 0 {
			t.Fatalf("peer %d counted corrupt entries on a clean fleet", i)
		}
	}
}

// campaignView mirrors the serve campaign aggregate for decoding in
// fleet tests (the production type is unexported).
type campaignView struct {
	ID      string    `json:"id"`
	Status  string    `json:"status"`
	Cells   int       `json:"cells"`
	Done    int       `json:"done"`
	Failed  int       `json:"failed"`
	Results []cellRes `json:"results"`
}

type cellRes struct {
	ID      string        `json:"id"`
	Spec    store.JobSpec `json:"spec"`
	Status  string        `json:"status"`
	Verdict string        `json:"verdict"`
}
