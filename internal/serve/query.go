package serve

import (
	"net/http"

	"repro/internal/store"
)

// This file is the HTTP face of the store's query/management plane:
// list/filter the verdict warehouse, aggregate a campaign's pass
// rate, diff two campaigns, and inspect or compact the storage
// engine. All of it reads through store.Interface, so the answers are
// identical under either engine and match cccheck -mode query run
// offline against the same cache directory.

func (s *Server) countQuery() {
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()
}

// handleListVerdicts is GET /v1/verdicts?filter=k=v,…: every stored
// verdict passing the filter, in key order (deterministic for a given
// warehouse content).
func (s *Server) handleListVerdicts(w http.ResponseWriter, r *http.Request) {
	s.countQuery()
	f, err := store.ParseFilter(r.URL.Query().Get("filter"))
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	rows, err := store.List(s.cfg.Store, f)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "listing verdicts: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":    len(rows),
		"verdicts": rows,
	})
}

// handleCampaignSummary is GET /v1/campaigns/{id}/summary: the query
// plane's pass-rate aggregate over the campaign's cells, resolved
// from memory or the persisted manifest.
func (s *Server) handleCampaignSummary(w http.ResponseWriter, r *http.Request) {
	s.countQuery()
	id := r.PathValue("id")
	keys, ok := s.campaignKeys(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	sum := store.Summarize(s.cfg.Store, keys)
	sum.Campaign = id
	writeJSON(w, http.StatusOK, sum)
}

// handleDiffCampaigns is GET /v1/campaigns/diff?a=…&b=…: cell-by-cell
// verdict comparison of two campaigns in expansion order.
func (s *Server) handleDiffCampaigns(w http.ResponseWriter, r *http.Request) {
	s.countQuery()
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if a == "" || b == "" {
		s.badRequest(w, "diff needs both ?a= and ?b= campaign ids")
		return
	}
	keysA, ok := s.campaignKeys(a)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", a)
		return
	}
	keysB, ok := s.campaignKeys(b)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", b)
		return
	}
	writeJSON(w, http.StatusOK, store.DiffCells(s.cfg.Store, a, b, keysA, keysB))
}

// handleStoreStats is GET /v1/store/stats: the engine's footprint
// plus the persisted-campaign count.
func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	s.countQuery()
	writeJSON(w, http.StatusOK, map[string]any{
		"store":     s.cfg.Store.Stats(),
		"campaigns": len(s.cfg.Store.Campaigns()),
	})
}

// handleStoreCompact is POST /v1/store/compact: force a compaction
// and report what it did. A no-op report on the dir engine; on the
// log engine Get bytes are identical before and after (the CI smoke
// cmp-checks exactly that).
func (s *Server) handleStoreCompact(w http.ResponseWriter, r *http.Request) {
	stats, err := s.cfg.Store.Compact()
	if err != nil {
		s.storeFailed(err)
		writeError(w, http.StatusInternalServerError, "compaction failed: %v", err)
		return
	}
	s.mu.Lock()
	s.compactions++
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, stats)
}
