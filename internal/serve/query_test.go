package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// Query-plane endpoint tests, run against both store engines: the
// list/filter/summary/diff surface, the stats/compact management
// endpoints, and the guarantee that compaction is invisible in served
// verdict bytes.

// newEngineServer boots a server over a store of the given engine.
func newEngineServer(t *testing.T, dir, engine string) *httptest.Server {
	t.Helper()
	st, err := store.OpenEngine(engine, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Store: st, Jobs: 2, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// runQueryCampaign submits the standard 2×2 grid and waits for it.
func runQueryCampaign(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	code, v, _ := postJSON(t, ts.URL+"/v1/campaigns", map[string]any{
		"algs": []string{"cc1", "cc2"}, "topos": []string{"ring:3"},
		"daemons": []string{"central", "synchronous"}, "inits": []string{"legit"},
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST campaign: %d %v", code, v)
	}
	id, _ := v["id"].(string)
	deadline := time.Now().Add(2 * time.Minute)
	for {
		_, raw := get(t, ts.URL+"/v1/campaigns/"+id)
		var agg map[string]any
		json.Unmarshal(raw, &agg)
		if agg["status"] == "done" {
			return id
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never finished: %s", raw)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueryEndpoints drives the whole query plane over each engine and
// asserts the list body is byte-identical between engines — the HTTP
// face of the store battery's differential guarantee.
func TestQueryEndpoints(t *testing.T) {
	listBodies := map[string][]byte{}
	for _, engine := range []string{store.EngineDir, store.EngineLog} {
		t.Run(engine, func(t *testing.T) {
			ts := newEngineServer(t, t.TempDir(), engine)
			id := runQueryCampaign(t, ts)

			code, raw := get(t, ts.URL+"/v1/verdicts")
			if code != http.StatusOK {
				t.Fatalf("GET /v1/verdicts: %d %s", code, raw)
			}
			var list map[string]any
			json.Unmarshal(raw, &list)
			if list["count"] != float64(4) {
				t.Fatalf("list count: %v", list["count"])
			}
			listBodies[engine] = raw

			code, raw = get(t, ts.URL+"/v1/verdicts?filter="+url.QueryEscape("alg=cc1"))
			var filtered map[string]any
			json.Unmarshal(raw, &filtered)
			if code != http.StatusOK || filtered["count"] != float64(2) {
				t.Fatalf("filtered list: %d %s", code, raw)
			}
			for _, row := range filtered["verdicts"].([]any) {
				spec := row.(map[string]any)["spec"].(map[string]any)
				if spec["alg"] != "cc1" {
					t.Fatalf("filter leaked a foreign row: %v", row)
				}
			}

			code, raw = get(t, ts.URL+"/v1/campaigns/"+id+"/summary")
			var sum map[string]any
			json.Unmarshal(raw, &sum)
			if code != http.StatusOK || sum["campaign"] != id ||
				sum["verified"] != float64(4) || sum["pass_rate"] != float64(1) {
				t.Fatalf("summary: %d %s", code, raw)
			}

			code, raw = get(t, ts.URL+"/v1/campaigns/diff?a="+id+"&b="+id)
			var diff map[string]any
			json.Unmarshal(raw, &diff)
			if code != http.StatusOK || diff["equal"] != float64(4) || diff["differing"] != float64(0) {
				t.Fatalf("self-diff: %d %s", code, raw)
			}

			code, raw = get(t, ts.URL+"/v1/store/stats")
			var stats map[string]any
			json.Unmarshal(raw, &stats)
			if code != http.StatusOK {
				t.Fatalf("stats: %d %s", code, raw)
			}
			if got := stats["store"].(map[string]any)["engine"]; got != engine {
				t.Fatalf("stats report engine %v, want %s", got, engine)
			}
			if stats["campaigns"] != float64(1) {
				t.Fatalf("stats campaigns: %v", stats["campaigns"])
			}

			// Compaction must not change a single served byte. Fetch every
			// verdict body, compact through the API, fetch again.
			keys := make([]string, 0, 4)
			for _, row := range list["verdicts"].([]any) {
				keys = append(keys, row.(map[string]any)["key"].(string))
			}
			before := map[string][]byte{}
			for _, k := range keys {
				code, body := get(t, ts.URL+"/v1/jobs/"+k+"/result")
				if code != http.StatusOK {
					t.Fatalf("result %s: %d", k[:8], code)
				}
				before[k] = body
			}
			resp, cv, craw := postJSON(t, ts.URL+"/v1/store/compact", nil)
			if resp != http.StatusOK {
				t.Fatalf("compact: %d %s", resp, craw)
			}
			if engine == store.EngineLog && cv["live"] != float64(4) {
				t.Fatalf("compact stats: %v", cv)
			}
			for _, k := range keys {
				if _, body := get(t, ts.URL+"/v1/jobs/"+k+"/result"); !bytes.Equal(body, before[k]) {
					t.Fatalf("verdict %s changed across compaction", k[:8])
				}
			}

			if metric(t, ts, "ccserve_queries_total") == 0 {
				t.Fatal("query counter never moved")
			}
			if metric(t, ts, "ccserve_compactions_total") != 1 {
				t.Fatal("compaction counter did not record the compact")
			}
		})
	}
	if !bytes.Equal(listBodies[store.EngineDir], listBodies[store.EngineLog]) {
		t.Fatal("/v1/verdicts body differs between dir and log engines")
	}
}

// TestQueryErrorPaths: every refusal on the query plane carries the
// standard envelope with the right class.
func TestQueryErrorPaths(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	id := runQueryCampaign(t, ts)
	for _, tc := range []struct {
		name, path string
		code       int
		class      string
	}{
		{"bad filter key", "/v1/verdicts?filter=" + url.QueryEscape("color=red"), 400, "bad_request"},
		{"bad filter verdict", "/v1/verdicts?filter=" + url.QueryEscape("verdict=maybe"), 400, "bad_request"},
		{"unknown summary", "/v1/campaigns/nope/summary", 404, "not_found"},
		{"diff missing b", "/v1/campaigns/diff?a=" + id, 400, "bad_request"},
		{"diff missing both", "/v1/campaigns/diff", 400, "bad_request"},
		{"diff unknown a", "/v1/campaigns/diff?a=nope&b=" + id, 404, "not_found"},
		{"diff unknown b", "/v1/campaigns/diff?a=" + id + "&b=nope", 404, "not_found"},
	} {
		code, raw := get(t, ts.URL+tc.path)
		if code != tc.code {
			t.Errorf("%s: got %d (%s), want %d", tc.name, code, raw, tc.code)
			continue
		}
		wantEnvelope(t, tc.name, raw, tc.class)
	}
}

// wantEnvelope asserts the unified error shape: non-empty error, the
// expected class, and retry_after only on shed classes.
func wantEnvelope(t *testing.T, name string, raw []byte, class string) {
	t.Helper()
	var env struct {
		Error      string `json:"error"`
		Class      string `json:"class"`
		RetryAfter int    `json:"retry_after"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Errorf("%s: refusal is not JSON: %s", name, raw)
		return
	}
	if env.Error == "" {
		t.Errorf("%s: envelope has no error message: %s", name, raw)
	}
	if env.Class != class {
		t.Errorf("%s: class %q, want %q (%s)", name, env.Class, class, raw)
	}
	shed := class == "shed" || class == "unavailable"
	if shed && env.RetryAfter < 1 {
		t.Errorf("%s: shed envelope without retry_after: %s", name, raw)
	}
	if !shed && env.RetryAfter != 0 {
		t.Errorf("%s: non-shed envelope carries retry_after: %s", name, raw)
	}
}
