// Package serve is the verification-as-a-service layer: an HTTP API
// (stdlib net/http) over the exhaustive checker, the content-addressed
// verdict store and the campaign expander. Jobs are content-addressed
// — the job id IS the store key — so identical submissions dedupe at
// every level: an in-flight identical job is joined (singleflight), a
// completed one is served from the store byte-identically, and only
// genuinely new specs reach the explorer, through a bounded worker
// pool so concurrent clients cannot oversubscribe the machine.
//
//	POST /v1/jobs            submit a store.JobSpec; 200 = served from cache,
//	                         202 = queued/running (joined if already in flight)
//	GET  /v1/jobs/{id}       status envelope (spec, status, cached, verdict, counts)
//	GET  /v1/jobs/{id}/result  the full explore.Result JSON, byte-identical
//	                         between cached and freshly computed verdicts
//	POST /v1/campaigns       submit a campaign.Spec grid; cells share the job machinery
//	GET  /v1/campaigns/{id}  deterministic aggregate (cells in expansion order)
//	GET  /v1/campaigns/{id}/summary  pass-rate aggregate from the query plane
//	GET  /v1/campaigns/diff?a=…&b=…  cell-by-cell diff of two campaigns
//	GET  /v1/verdicts?filter=…       list/filter the verdict warehouse
//	GET  /v1/store/stats     store engine footprint (entries, segments, garbage)
//	POST /v1/store/compact   force a store compaction (no-op on the dir engine)
//	GET  /healthz            liveness (the process is up)
//	GET  /readyz             readiness (accepting work; 503 while draining,
//	                         degraded while the store breaker is open)
//	GET  /metrics            Prometheus-style text: cache hit ratio, states/sec,
//	                         queue depth, worker pool, shedding and breaker state
//
// Every error response — including the mux-generated 404/405 for
// unknown routes and wrong methods — is one JSON envelope:
// {"error": …, "class": …, "retry_after": …} where class is a
// machine-readable kind (bad_request | not_found | method_not_allowed
// | shed | unavailable | internal) and retry_after (seconds, also the
// Retry-After header) appears on shed and draining responses. See
// docs/api.md.
//
// The server degrades rather than collapses: submissions past the queue
// or in-flight bounds are shed with 429 + Retry-After, each job runs
// under an optional wall-clock timeout, and a failing verdict store
// trips a circuit breaker into compute-only mode — verdicts stay
// correct, they just stop being persisted until the store recovers.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/explore"
	"repro/internal/gossip"
	"repro/internal/pubsub"
	"repro/internal/store"
)

// Config parameterizes the server.
type Config struct {
	// Store is the verdict cache (required) — either engine behind
	// store.Interface.
	Store store.Interface
	// Jobs is the number of explorations running concurrently
	// (default 2). Submissions beyond it queue.
	Jobs int
	// JobWorkers is the explorer pool width per job (default
	// GOMAXPROCS/Jobs, min 1), so Jobs × JobWorkers ≈ GOMAXPROCS and
	// concurrent clients cannot oversubscribe the explorer.
	JobWorkers int
	// MaxStatesCap rejects specs whose state bound exceeds it —
	// including "unlimited" — protecting the server's memory from one
	// hostile submission (default 6,000,000; negative = uncapped).
	MaxStatesCap int
	// RetainJobs bounds the finished jobs kept in memory (default
	// 1024; negative = unlimited). Older finished jobs are evicted
	// FIFO — their verdicts live in the store, and a later GET or
	// resubmission re-hydrates them by content key — so a client
	// streaming distinct specs cannot grow the process without bound.
	// (Failed jobs are not persisted; an evicted failure reads 404.)
	RetainJobs int
	// MaxQueue bounds the jobs waiting for a worker slot (default
	// 256; negative = unlimited). Submissions past it are rejected
	// with 503 rather than parking unbounded goroutines and records.
	MaxQueue int
	// CheckpointEvery enables in-flight job checkpointing: every N
	// expanded states — and on shutdown — a running exploration
	// persists a resumable snapshot under its content key in the
	// store, so a killed server loses at most N states of work per
	// job and a resubmission after restart resumes instead of
	// restarting (default 1,000,000; negative = disabled).
	CheckpointEvery int
	// MemBudget bounds each job's in-memory explorer footprint
	// (bytes; 0 = fully in-memory): past it the frontier and the cold
	// visited arena spill to SpillDir ("" = the system temp dir),
	// letting jobs exceed RAM with byte-identical verdicts.
	MemBudget int64
	SpillDir  string
	// FS routes the explorers' spill-file I/O through a chaos.FS
	// (nil = the host filesystem). The store carries its own FS from
	// store.OpenFS; this covers the scratch files.
	FS chaos.FS
	// JobTimeout bounds each job's wall-clock run (0 = no timeout;
	// negative = no timeout). A job past it fails with a classified
	// timeout message; its checkpoint (if enabled) survives, so a
	// resubmission resumes rather than restarts.
	JobTimeout time.Duration
	// MaxInFlight bounds concurrently-handled API requests (default
	// 512; negative = unlimited). Requests past it are shed with 429 +
	// Retry-After before touching any server state; /healthz, /readyz
	// and /metrics are exempt so operators can always see in.
	MaxInFlight int
	// BreakerFailures is the consecutive store-write failures that trip
	// the circuit breaker into compute-only mode (default 3; negative =
	// breaker disabled). While open, jobs skip the store entirely —
	// verdicts are computed and served from memory, not persisted — and
	// after BreakerCooldown one job probes the store again (half-open):
	// success closes the breaker, failure re-opens it.
	BreakerFailures int
	// BreakerCooldown is how long the breaker stays open before a probe
	// (default 15s).
	BreakerCooldown time.Duration
	// Peers, when non-empty, records the cluster this server is a
	// member of (base URLs, one per peer, this server among them) for
	// /v1/cluster/status. The cluster endpoints themselves are always
	// mounted — a coordinator's open request carries the peer list it
	// is driving — so this is operator-facing configuration, not a
	// gate.
	Peers []string
	// Gossip, when non-nil, mounts the verdict gossip plane under
	// /v1/gossip/ (exempt from load shedding, like the cluster tier)
	// and announces every locally committed verdict to the node's
	// neighbors. Wire the node's OnIngest to GossipIngested so
	// gossiped verdicts resolve local watchers.
	Gossip *gossip.Node
	// Watch parameterizes the pubsub broker behind the SSE watch
	// endpoints (zero values = defaults).
	Watch pubsub.Options
	// Log, if non-nil, receives one line per job state change.
	Log func(format string, args ...any)
}

// Job statuses.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
	// StatusUnknown: a campaign cell whose job was evicted and whose
	// store entry is gone (externally wiped cache).
	StatusUnknown = "unknown"
)

type job struct {
	spec   store.JobSpec
	key    string
	status string
	cached bool
	errMsg string
	// errClass is the chaos classification of a failed job's error
	// (transient | permanent | corrupt), empty when the failure is not
	// a classifiable I/O fault — surfaced as error_class in the status
	// envelope so clients can tell a retryable infrastructure failure
	// from a broken spec without parsing the message.
	errClass string
	result   []byte // raw explore.Result JSON, exactly as stored
	res      *explore.Result
}

type camp struct {
	id   string
	keys []string // cell keys in expansion order
	// terminal marks cells whose cell event has been published on the
	// campaign topic; doneSent latches the campaign's terminal event.
	terminal map[string]bool
	doneSent bool
}

// Server implements the HTTP API. Create with New; it is an
// http.Handler.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	sem   chan struct{}
	start time.Time

	// baseCtx is cancelled by Drain: running explorations notice at
	// their next chunk boundary, checkpoint, and stop; jobsWG tracks
	// them so shutdown can wait for the snapshots to land.
	baseCtx  context.Context
	stopJobs context.CancelFunc
	jobsWG   sync.WaitGroup

	// inFlight counts requests currently inside ServeHTTP (atomic: the
	// shedding check must not contend on mu).
	inFlight atomic.Int64
	// watchConns counts open SSE watch streams (atomic: incremented on
	// the streaming path, read by /metrics).
	watchConns atomic.Int64
	// broker fans progress and terminal events out to the watch
	// streams; hist is the API request-latency histogram.
	broker *pubsub.Broker
	hist   latencyHist

	mu        sync.Mutex
	jobs      map[string]*job
	doneOrder []string // finished job keys in completion order (FIFO eviction)
	campaigns map[string]*camp
	// cellCampaigns maps a cell's job key to the campaigns it belongs
	// to, so a finishing job can fan its cell event out.
	cellCampaigns map[string][]string
	clusterJobs   map[string]*clusterPeer

	// Store circuit breaker (under mu). breakerUntil zero = closed;
	// in the future = open (compute-only); in the past = half-open
	// (the next job probes the store).
	breakerFails int
	breakerUntil time.Time

	// Counters (under mu; the handler load here is verification jobs,
	// not a hot path).
	submitted, deduped, executed, failures int64
	rejected, interrupted                  int64
	shed, jobsTimedOut                     int64
	storeFailures, breakerTrips            int64
	checkpointErrors                       int64
	badRequests                            int64
	clusterOpens, clusterAdoptions         int64
	clusterFramesIn, clusterFrameBytes     int64
	clusterErrors                          int64
	cacheHits, cacheMisses                 int64
	gossipIngests                          int64
	queued, running                        int64
	statesExplored                         int64
	exploreNanos                           int64
	checkpointsWritten                     int64
	jobsResumed, statesResumed             int64
	queries, compactions                   int64
}

// New builds a Server over the given store.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: a verdict store is required")
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 2
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = runtime.GOMAXPROCS(0) / cfg.Jobs
		if cfg.JobWorkers < 1 {
			cfg.JobWorkers = 1
		}
	}
	if cfg.MaxStatesCap == 0 {
		cfg.MaxStatesCap = 6_000_000
	}
	if cfg.RetainJobs == 0 {
		cfg.RetainJobs = 1024
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 256
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 1_000_000
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 512
	}
	if cfg.BreakerFailures == 0 {
		cfg.BreakerFailures = 3
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 15 * time.Second
	}
	baseCtx, stopJobs := context.WithCancel(context.Background())
	s := &Server{
		cfg:           cfg,
		mux:           http.NewServeMux(),
		sem:           make(chan struct{}, cfg.Jobs),
		start:         time.Now(),
		baseCtx:       baseCtx,
		stopJobs:      stopJobs,
		broker:        pubsub.New(cfg.Watch),
		jobs:          map[string]*job{},
		campaigns:     map[string]*camp{},
		cellCampaigns: map[string][]string{},
		clusterJobs:   map[string]*clusterPeer{},
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleGetResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/watch", s.handleWatchJob)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/watch", s.handleWatchCampaign)
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmitCampaign)
	s.mux.HandleFunc("GET /v1/campaigns/diff", s.handleDiffCampaigns)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleGetCampaign)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/summary", s.handleCampaignSummary)
	s.mux.HandleFunc("GET /v1/verdicts", s.handleListVerdicts)
	s.mux.HandleFunc("GET /v1/store/stats", s.handleStoreStats)
	s.mux.HandleFunc("POST /v1/store/compact", s.handleStoreCompact)
	s.mux.HandleFunc("POST /v1/cluster/rpc", s.handleClusterRPC)
	s.mux.HandleFunc("POST /v1/cluster/frontier", s.handleClusterFrontier)
	s.mux.HandleFunc("POST /v1/cluster/adopt", s.handleClusterAdopt)
	s.mux.HandleFunc("GET /v1/cluster/status", s.handleClusterStatus)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Every mux dispatch goes through the envelope interceptor so even
	// the stdlib's own plain-text 404/405 responses come out as the
	// unified JSON error envelope.
	ew := &envelopeWriter{ResponseWriter: w, req: r}
	switch r.URL.Path {
	case "/healthz", "/readyz", "/metrics":
		// Observability stays reachable however overloaded the API is.
		s.mux.ServeHTTP(ew, r)
		return
	}
	if strings.HasPrefix(r.URL.Path, "/v1/cluster/") {
		// The cluster tier is exempt from load shedding: a shed frame or
		// barrier RPC mid-layer would force a whole distributed layer
		// retry, and the peer set is a closed, operator-sized population
		// — not the open client population the in-flight cap protects
		// against.
		s.mux.ServeHTTP(ew, r)
		return
	}
	if strings.HasPrefix(r.URL.Path, "/v1/gossip/") {
		// The gossip plane is peer traffic, exempt like the cluster
		// tier; without a node configured it falls through to the mux
		// for the enveloped 404.
		if s.cfg.Gossip != nil {
			s.cfg.Gossip.ServeHTTP(ew, r)
			return
		}
		s.mux.ServeHTTP(ew, r)
		return
	}
	if strings.HasPrefix(r.URL.Path, "/v1/") && strings.HasSuffix(r.URL.Path, "/watch") {
		// Watch streams are held open for a job's lifetime: counting
		// them against the in-flight cap would let 512 idle dashboards
		// starve the API, and their duration would swamp the latency
		// histogram. Their cost is bounded elsewhere — per-subscriber
		// queues with slow-consumer eviction, and the OS fd limit.
		s.mux.ServeHTTP(ew, r)
		return
	}
	start := time.Now()
	defer func() { s.hist.observe(time.Since(start)) }()
	if max := s.cfg.MaxInFlight; max > 0 {
		n := s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		if n > int64(max) {
			s.mu.Lock()
			s.shed++
			s.mu.Unlock()
			writeShed(w, http.StatusTooManyRequests, 1,
				"serve: %d requests in flight exceeds the cap of %d, retry shortly", n, max)
			return
		}
	}
	s.mux.ServeHTTP(ew, r)
}

// envelopeWriter rewrites the plain-text 404 and 405 bodies the
// stdlib mux writes for unknown routes and disallowed methods into
// the one JSON error envelope every handler-level error already uses.
// Handler responses pass through untouched: they set an
// application/json content type before writing their status, which is
// the discriminator.
type envelopeWriter struct {
	http.ResponseWriter
	req         *http.Request
	wroteHeader bool
	intercepted bool
}

func (w *envelopeWriter) WriteHeader(code int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	ct := w.Header().Get("Content-Type")
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(ct, "application/json") {
		w.intercepted = true
		body, _ := json.MarshalIndent(errEnvelope{
			Error: fmt.Sprintf("%s %s: %s", w.req.Method, w.req.URL.Path,
				strings.ToLower(http.StatusText(code))),
			Class: errClass(code),
		}, "", "  ")
		w.Header().Del("X-Content-Type-Options")
		w.Header().Del("Content-Length")
		w.Header().Set("Content-Type", "application/json")
		w.ResponseWriter.WriteHeader(code)
		w.ResponseWriter.Write(append(body, '\n'))
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *envelopeWriter) Write(p []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.intercepted {
		return len(p), nil // swallow the replaced plain-text body
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so SSE watch streams can
// push events through the envelope interceptor.
func (w *envelopeWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(append(data, '\n'))
}

// errEnvelope is the one shape every error response takes (see the
// package doc): a human-readable message, a machine-readable class
// derived from the status code, and — on shed/draining responses —
// the Retry-After hint mirrored into the body.
type errEnvelope struct {
	Error      string `json:"error"`
	Class      string `json:"class"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

// errClass maps a status code onto the envelope's class vocabulary.
func errClass(code int) string {
	switch code {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusTooManyRequests:
		return "shed"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errEnvelope{Error: fmt.Sprintf(format, args...), Class: errClass(code)})
}

// badRequest is the 400 path for client mistakes — malformed JSON,
// unknown fields, oversized bodies, invalid specs — counted separately
// from server-side failures so the error-path tests (and operators)
// can see rejects move without parsing logs.
func (s *Server) badRequest(w http.ResponseWriter, format string, args ...any) {
	s.mu.Lock()
	s.badRequests++
	s.mu.Unlock()
	writeError(w, http.StatusBadRequest, format, args...)
}

// maxSpecBytes bounds job and campaign submission bodies: a canonical
// spec is well under a kilobyte, so anything past this is hostile or
// broken and is rejected before buffering more.
const maxSpecBytes = 1 << 20

// writeShed is the load-shedding variant of writeError: the same
// envelope with a Retry-After hint in both the header and the body,
// so clients (and the CI smoke) can back off mechanically instead of
// hammering.
func writeShed(w http.ResponseWriter, code, retryAfter int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, code, errEnvelope{
		Error: fmt.Sprintf(format, args...), Class: errClass(code), RetryAfter: retryAfter,
	})
}

// writeReject maps a submit error onto the unified shedding shape:
// queue-full is 429 with a Retry-After scaled to the backlog (the
// queue drains at roughly one job per worker slot), shutting-down is
// 503 with a fixed hint (the restarted server is seconds away, not
// milliseconds).
func (s *Server) writeReject(w http.ResponseWriter, err error, format string, args ...any) {
	switch {
	case errors.Is(err, errQueueFull):
		s.mu.Lock()
		ra := 1 + int(s.queued)/s.cfg.Jobs
		s.mu.Unlock()
		if ra > 60 {
			ra = 60
		}
		writeShed(w, http.StatusTooManyRequests, ra, format, args...)
	case errors.Is(err, errShuttingDown):
		writeShed(w, http.StatusServiceUnavailable, 10, format, args...)
	default:
		writeError(w, http.StatusServiceUnavailable, format, args...)
	}
}

// jobView is the status envelope for one job.
type jobView struct {
	ID          string        `json:"id"`
	Spec        store.JobSpec `json:"spec"`
	Status      string        `json:"status"`
	Cached      bool          `json:"cached"`
	Error       string        `json:"error,omitempty"`
	ErrorClass  string        `json:"error_class,omitempty"`
	Verdict     string        `json:"verdict,omitempty"`
	Inits       int           `json:"inits,omitempty"`
	States      int           `json:"states,omitempty"`
	Transitions int64         `json:"transitions,omitempty"`
	Violations  int           `json:"violations,omitempty"`
}

func (s *Server) view(j *job) jobView {
	v := jobView{ID: j.key, Spec: j.spec, Status: j.status, Cached: j.cached, Error: j.errMsg, ErrorClass: j.errClass}
	if j.res != nil {
		v.Verdict = j.res.Verdict()
		v.Inits = j.res.Inits
		v.States = j.res.States
		v.Transitions = j.res.Transitions
		v.Violations = len(j.res.Violations)
	}
	return v
}

// errQueueFull rejects submissions past Config.MaxQueue.
var errQueueFull = fmt.Errorf("serve: job queue is full, retry later")

// storeAvailable reports whether jobs should touch the verdict store:
// true when the breaker is closed or past its cooldown (half-open — the
// caller's store call is the probe).
func (s *Server) storeAvailable() bool {
	if s.cfg.BreakerFailures < 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.breakerUntil.IsZero() || time.Now().After(s.breakerUntil)
}

// storeFailed records a store-write failure and trips the breaker after
// BreakerFailures consecutive ones (or re-opens it after a failed
// half-open probe).
func (s *Server) storeFailed(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.storeFailures++
	if s.cfg.BreakerFailures < 0 {
		return
	}
	s.breakerFails++
	if s.breakerFails >= s.cfg.BreakerFailures && (s.breakerUntil.IsZero() || time.Now().After(s.breakerUntil)) {
		s.breakerUntil = time.Now().Add(s.cfg.BreakerCooldown)
		s.breakerTrips++
		s.logf("store breaker open for %v after %d consecutive write failures (%v): compute-only until the store recovers",
			s.cfg.BreakerCooldown, s.breakerFails, err)
	}
}

// storeOK records a successful store write, closing the breaker.
func (s *Server) storeOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.breakerUntil.IsZero() {
		s.logf("store breaker closed: store write succeeded")
	}
	s.breakerFails = 0
	s.breakerUntil = time.Time{}
}

// breakerState: 0 closed, 1 half-open, 2 open.
func (s *Server) breakerState() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.breakerUntil.IsZero():
		return 0
	case time.Now().Before(s.breakerUntil):
		return 2
	default:
		return 1
	}
}

// submit registers a job for the canonical spec, joining an existing
// identical job (in flight or completed) or serving it from the store.
// Returns the job and whether this submission created it; the error is
// errQueueFull when the job would exceed the queue bound (the handler
// turns it into a 503).
func (s *Server) submit(spec store.JobSpec) (*job, bool, error) {
	key := spec.Key()
	s.mu.Lock()
	s.submitted++
	if j, ok := s.jobs[key]; ok && j.status != StatusFailed {
		s.deduped++
		if j.status == StatusDone {
			// Joining a completed job serves its verdict without
			// recomputation: a (memory-level) cache hit.
			s.cacheHits++
		}
		s.mu.Unlock()
		return j, false, nil
	}
	// A failed record (queue rejection, execution error) does not pin
	// the key: a resubmission retries fresh.
	// Install a placeholder so concurrent identical submissions join it,
	// then probe the store outside the lock (disk I/O plus decoding a
	// result that can embed large counterexample traces must not stall
	// every other handler).
	j := &job{spec: spec, key: key, status: StatusQueued}
	s.jobs[key] = j
	s.mu.Unlock()

	// With the breaker open the store is known bad: skip the disk probe
	// (a miss at worst costs a recompute; a hang here would stall every
	// handler behind a dead disk).
	var (
		res *explore.Result
		raw []byte
		hit bool
	)
	if s.storeAvailable() {
		res, raw, hit = s.cfg.Store.Get(spec)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if hit {
		s.cacheHits++
		j.status, j.cached, j.res, j.result = StatusDone, true, res, raw
		s.finishLocked(key)
		s.publishJobTerminalLocked(j)
		return j, true, nil
	}
	if s.cfg.MaxQueue >= 0 && s.queued >= int64(s.cfg.MaxQueue) {
		// Fail the record in place — anyone who joined the placeholder
		// meanwhile (and already holds a 202 with this id) polls into
		// the failure instead of a vanished 404. finishLocked makes the
		// record evictable, and submit's dedupe check skips failed
		// records, so a later resubmission retries fresh.
		s.rejected++
		j.status, j.errMsg = StatusFailed, errQueueFull.Error()
		s.finishLocked(key)
		s.publishJobTerminalLocked(j)
		return nil, false, errQueueFull
	}
	if s.baseCtx.Err() != nil {
		// Draining: reject rather than spawn a job whose context is
		// already cancelled (and whose jobsWG.Add could race Drain's
		// Wait — the cancel and this check are both under s.mu, so an
		// accepted Add strictly precedes the Wait).
		s.rejected++
		j.status, j.errMsg = StatusFailed, errShuttingDown.Error()
		s.finishLocked(key)
		s.publishJobTerminalLocked(j)
		return nil, false, errShuttingDown
	}
	s.cacheMisses++
	s.queued++
	s.jobsWG.Add(1)
	go s.run(j)
	return j, true, nil
}

// errShuttingDown rejects submissions that arrive while Drain is in
// progress (503, like a full queue).
var errShuttingDown = fmt.Errorf("serve: shutting down, retry against the restarted server")

// Drain stops accepting new exploration work and waits (up to the
// timeout) for the running jobs to notice the cancellation and persist
// their checkpoints — the graceful half of "kill -9 safe": a SIGTERM
// loses at most one chunk of work per job, a SIGKILL at most
// CheckpointEvery states.
func (s *Server) Drain(timeout time.Duration) bool {
	// Under s.mu so no submit can observe an un-cancelled context and
	// then Add after our Wait starts.
	s.mu.Lock()
	s.stopJobs()
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// finishLocked records a finished job for FIFO eviction and evicts
// past the retention bound. Called with s.mu held.
func (s *Server) finishLocked(key string) {
	s.doneOrder = append(s.doneOrder, key)
	if s.cfg.RetainJobs < 0 {
		return
	}
	for len(s.doneOrder) > s.cfg.RetainJobs {
		old := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		// The key may have been re-created since (evict → store hit →
		// fresh record): only drop finished records, never live ones.
		if j := s.jobs[old]; j != nil && (j.status == StatusDone || j.status == StatusFailed) {
			delete(s.jobs, old)
		}
	}
}

// hydrate rebuilds a finished job from its store entry after
// eviction (or from another process's run): the job id is the content
// key, so the verdict is recoverable byte-identically. The returned
// record is transient and private to the caller.
func (s *Server) hydrate(key string) *job {
	spec, res, raw, ok := s.cfg.Store.GetByKey(key)
	if !ok {
		return nil
	}
	return &job{spec: spec, key: key, status: StatusDone, cached: true, res: res, result: raw}
}

func (s *Server) run(j *job) {
	defer s.jobsWG.Done()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	s.mu.Lock()
	s.queued--
	s.running++
	j.status = StatusRunning
	s.mu.Unlock()
	s.logf("job %s running: %s", j.key[:12], j.spec)

	useStore := s.storeAvailable()
	eo := campaign.ExecOptions{
		Workers:   s.cfg.JobWorkers,
		MemBudget: s.cfg.MemBudget,
		SpillDir:  s.cfg.SpillDir,
		FS:        s.cfg.FS,
		Stats:     &explore.RunStats{},
		Progress:  s.progressFunc(j.key),
	}
	if s.cfg.CheckpointEvery > 0 && useStore {
		// Compute-only mode skips checkpointing too: snapshots live in
		// the same store that just failed.
		eo.Checkpoints = s.cfg.Store
		eo.CheckpointEvery = s.cfg.CheckpointEvery
	}
	jobCtx, cancelJob := s.baseCtx, context.CancelFunc(func() {})
	if s.cfg.JobTimeout > 0 {
		jobCtx, cancelJob = context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	}
	start := time.Now()
	res, err := campaign.ExecuteOpts(jobCtx, j.spec, eo)
	cancelJob()
	elapsed := time.Since(start)
	interrupted := errors.Is(err, campaign.ErrInterrupted)
	// A deadline on jobCtx with baseCtx still live is this job's own
	// timeout, not a shutdown.
	timedOut := interrupted && errors.Is(jobCtx.Err(), context.DeadlineExceeded) && s.baseCtx.Err() == nil

	var raw []byte
	if err == nil {
		// Serve the exact bytes the store now holds; if persisting
		// fails the verdict is still correct, so marshal it directly
		// (the next identical submission will recompute).
		if useStore {
			var perr error
			if raw, perr = s.cfg.Store.Put(j.spec, res); perr != nil {
				s.storeFailed(perr)
			} else {
				s.storeOK()
				if s.cfg.Gossip != nil {
					// Announce the fresh verdict to the fleet: the peers'
					// next identical submission is a store hit, not a
					// recomputation.
					s.cfg.Gossip.Committed(j.key)
				}
			}
		}
		if raw == nil {
			raw, _ = json.Marshal(res)
		}
	}

	s.mu.Lock()
	s.running--
	s.checkpointsWritten += int64(eo.Stats.CheckpointsWritten)
	s.checkpointErrors += int64(eo.Stats.CheckpointErrors)
	if eo.Stats.ResumedStates > 0 {
		s.jobsResumed++
		s.statesResumed += int64(eo.Stats.ResumedStates)
	}
	switch {
	case timedOut:
		s.failures++
		s.jobsTimedOut++
		j.status, j.errMsg = StatusFailed,
			fmt.Sprintf("job exceeded the %v wall-clock timeout (checkpoint saved if enabled; resubmit to resume)", s.cfg.JobTimeout)
	case interrupted:
		// Shutdown cancellation: the snapshot (if enabled) is on disk
		// and a post-restart resubmission resumes it; the record fails
		// so in-flight pollers see a terminal state.
		s.interrupted++
		j.status, j.errMsg = StatusFailed, "interrupted by shutdown (checkpoint saved; resubmit to resume)"
	case err != nil:
		s.failures++
		j.status, j.errMsg = StatusFailed, err.Error()
		// A classifiable I/O fault (spill write, checkpoint read)
		// surfaces its class in the envelope, mirroring the CLIs'
		// exit-code-4 discipline; validation and logic errors stay
		// unclassified.
		if cl := chaos.Classify(err); cl != chaos.Unknown {
			j.errClass = cl.String()
		}
	default:
		s.executed++
		s.statesExplored += int64(res.States)
		s.exploreNanos += elapsed.Nanoseconds()
		j.status, j.res, j.result = StatusDone, res, raw
	}
	s.finishLocked(j.key)
	s.publishJobTerminalLocked(j)
	s.mu.Unlock()
	switch {
	case timedOut:
		s.logf("job %s timed out after %v at %d states", j.key[:12], elapsed.Round(time.Millisecond), res.States)
	case interrupted:
		s.logf("job %s interrupted at %d states (checkpoint saved)", j.key[:12], res.States)
	case err != nil:
		s.logf("job %s failed: %v", j.key[:12], err)
	default:
		extra := ""
		if eo.Stats.ResumedStates > 0 {
			extra = fmt.Sprintf(", resumed from %d states", eo.Stats.ResumedStates)
		}
		s.logf("job %s done: %s in %v (%d states%s)", j.key[:12], res.Verdict(), elapsed.Round(time.Millisecond), res.States, extra)
	}
}

// validateSpec canonicalizes and fully validates a submission,
// including the server-side state-bound cap.
func (s *Server) validateSpec(spec store.JobSpec) (store.JobSpec, error) {
	c := spec.Canonical()
	if err := campaign.Validate(c); err != nil {
		return c, err
	}
	if cap := s.cfg.MaxStatesCap; cap > 0 && (c.MaxStates < 0 || c.MaxStates > cap) {
		return c, fmt.Errorf("serve: max_states %d exceeds this server's cap of %d", c.MaxStates, cap)
	}
	return c, nil
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec store.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.badRequest(w, "bad job spec: %v", err)
		return
	}
	c, err := s.validateSpec(spec)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	j, created, err := s.submit(c)
	if err != nil {
		s.writeReject(w, err, "%v", err)
		return
	}
	s.mu.Lock()
	v := s.view(j)
	s.mu.Unlock()
	if !created && v.Status == StatusDone {
		// The verdict was served without recomputation, whether it came
		// from the store or from this process's completed job.
		v.Cached = true
	}
	code := http.StatusAccepted
	if v.Status == StatusDone || v.Status == StatusFailed {
		code = http.StatusOK
	}
	writeJSON(w, code, v)
}

// getJob resolves a job id: the in-memory record if present, else a
// transient re-hydration from the store (evicted jobs, or verdicts
// computed by another process sharing the cache directory).
func (s *Server) getJob(id string) *job {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j != nil {
		return j
	}
	return s.hydrate(id)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	v := s.view(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	status, errMsg, result := j.status, j.errMsg, j.result
	s.mu.Unlock()
	switch status {
	case StatusFailed:
		writeError(w, http.StatusInternalServerError, "%s", errMsg)
	case StatusDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": j.key, "status": status})
	}
}

func (s *Server) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.badRequest(w, "bad campaign spec: %v", err)
		return
	}
	cells, err := spec.Expand()
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	// Validate every cell against the server cap before any work runs:
	// a partially-rejected campaign would be confusing to aggregate.
	keys := make([]string, len(cells))
	for i, c := range cells {
		if _, err := s.validateSpec(c); err != nil {
			s.badRequest(w, "cell %s: %v", c, err)
			return
		}
		keys[i] = c.Key()
	}
	id := store.CampaignID(keys)
	// Submit every cell before registering the campaign, so a GET for
	// the id can never observe a partially-submitted grid.
	for i, c := range cells {
		if _, _, err := s.submit(c); err != nil {
			// Already-queued cells keep running and persist; the client
			// resubmits the campaign once the queue drains and the done
			// cells are cache hits.
			s.writeReject(w, err, "%v after %d/%d cells", err, i, len(cells))
			return
		}
	}
	s.mu.Lock()
	c, existed := s.campaigns[id]
	if !existed {
		c = &camp{id: id, keys: keys, terminal: map[string]bool{}}
		s.campaigns[id] = c
		for _, k := range keys {
			s.cellCampaigns[k] = append(s.cellCampaigns[k], id)
		}
	}
	// Cells that finished before the registration above — store hits
	// served synchronously inside submit, or fast jobs — publish their
	// cell events now, so a watcher subscribing off this response's id
	// replays a complete picture (including the campaign's done event
	// when every cell was already cached).
	for _, k := range keys {
		if j := s.jobs[k]; j != nil && (j.status == StatusDone || j.status == StatusFailed) {
			s.publishCellLocked(c, j)
		}
	}
	s.mu.Unlock()
	// Persist the manifest so summary/diff queries survive restarts
	// and work offline (cccheck -mode query). Same breaker discipline
	// as verdict writes: with the store down the in-memory record
	// still serves this process.
	if !existed && s.storeAvailable() {
		if err := s.cfg.Store.PutCampaign(id, keys); err != nil {
			s.storeFailed(err)
		} else {
			s.storeOK()
		}
	}
	s.logf("campaign %s: %d cells", id[:12], len(cells))
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "cells": len(cells), "resubmitted": existed})
}

// campaignView is the aggregate for one campaign: cells in expansion
// order, so a completed campaign renders deterministically.
type campaignView struct {
	ID        string    `json:"id"`
	Status    string    `json:"status"` // running | done
	Cells     int       `json:"cells"`
	Done      int       `json:"done"`
	CacheHits int       `json:"cache_hits"`
	Verified  int       `json:"verified"`
	Bounded   int       `json:"bounded"`
	Violated  int       `json:"violated"`
	Failed    int       `json:"failed"`
	Results   []jobView `json:"results"`
}

// campaignKeys resolves a campaign id to its cell keys: the in-memory
// record if this process accepted the submission, else the persisted
// manifest (another process's campaign, or one from before a
// restart).
func (s *Server) campaignKeys(id string) ([]string, bool) {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c != nil {
		return append([]string(nil), c.keys...), true
	}
	return s.cfg.Store.GetCampaign(id)
}

func (s *Server) handleGetCampaign(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	keys, ok := s.campaignKeys(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	writeJSON(w, http.StatusOK, s.campaignStatus(id, keys))
}

// handleHealthz is liveness only: the process is up and serving. It
// stays 200 while draining or degraded — use /readyz to decide whether
// to send work here.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             true,
		"uptime_seconds": time.Since(s.start).Seconds(),
		"cache_dir":      s.cfg.Store.Dir(),
	})
}

var breakerNames = [...]string{"closed", "half-open", "open"}

// handleReadyz is readiness: 503 + Retry-After while draining (new
// submissions are rejected anyway), 200 otherwise — with degraded=true
// while the store breaker is open and verdicts are compute-only.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.baseCtx.Err() != nil
	queued := s.queued
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", "10")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready":  false,
			"reason": "draining: new submissions are rejected while running jobs checkpoint",
		})
		return
	}
	state := s.breakerState()
	writeJSON(w, http.StatusOK, map[string]any{
		"ready":       true,
		"degraded":    state != 0,
		"breaker":     breakerNames[state],
		"queue_depth": queued,
		"in_flight":   s.inFlight.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	submitted, deduped, executed, failures := s.submitted, s.deduped, s.executed, s.failures
	rejected, interrupted := s.rejected, s.interrupted
	shed, timedOut := s.shed, s.jobsTimedOut
	storeFailures, breakerTrips := s.storeFailures, s.breakerTrips
	ckptErrs := s.checkpointErrors
	hits, misses := s.cacheHits, s.cacheMisses
	gossipIngests := s.gossipIngests
	queued, running := s.queued, s.running
	states, nanos := s.statesExplored, s.exploreNanos
	ckpts, resumed, statesResumed := s.checkpointsWritten, s.jobsResumed, s.statesResumed
	badReqs := s.badRequests
	queries, compactions := s.queries, s.compactions
	clOpens, clAdoptions := s.clusterOpens, s.clusterAdoptions
	clFrames, clFrameBytes := s.clusterFramesIn, s.clusterFrameBytes
	clErrors, clJobs := s.clusterErrors, int64(len(s.clusterJobs))
	s.mu.Unlock()
	breaker := s.breakerState()
	hitRatio := 0.0
	if hits+misses > 0 {
		hitRatio = float64(hits) / float64(hits+misses)
	}
	statesPerSec := 0.0
	if nanos > 0 {
		statesPerSec = float64(states) / (float64(nanos) / 1e9)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "ccserve_jobs_submitted_total %d\n", submitted)
	fmt.Fprintf(w, "ccserve_jobs_deduped_total %d\n", deduped)
	fmt.Fprintf(w, "ccserve_jobs_executed_total %d\n", executed)
	fmt.Fprintf(w, "ccserve_jobs_failed_total %d\n", failures)
	fmt.Fprintf(w, "ccserve_jobs_rejected_total %d\n", rejected)
	fmt.Fprintf(w, "ccserve_jobs_interrupted_total %d\n", interrupted)
	fmt.Fprintf(w, "ccserve_requests_shed_total %d\n", shed)
	fmt.Fprintf(w, "ccserve_jobs_timed_out_total %d\n", timedOut)
	fmt.Fprintf(w, "ccserve_store_failures_total %d\n", storeFailures)
	fmt.Fprintf(w, "ccserve_breaker_trips_total %d\n", breakerTrips)
	fmt.Fprintf(w, "ccserve_breaker_state %d\n", breaker)
	fmt.Fprintf(w, "ccserve_quarantined_total %d\n", s.cfg.Store.Quarantined())
	fmt.Fprintf(w, "ccserve_checkpoint_errors_total %d\n", ckptErrs)
	fmt.Fprintf(w, "ccserve_checkpoints_written_total %d\n", ckpts)
	fmt.Fprintf(w, "ccserve_jobs_resumed_total %d\n", resumed)
	fmt.Fprintf(w, "ccserve_states_resumed_total %d\n", statesResumed)
	fmt.Fprintf(w, "ccserve_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "ccserve_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "ccserve_cache_hit_ratio %g\n", hitRatio)
	fmt.Fprintf(w, "ccserve_states_explored_total %d\n", states)
	fmt.Fprintf(w, "ccserve_states_per_second %g\n", statesPerSec)
	fmt.Fprintf(w, "ccserve_queue_depth %d\n", queued)
	fmt.Fprintf(w, "ccserve_jobs_running %d\n", running)
	fmt.Fprintf(w, "ccserve_bad_requests_total %d\n", badReqs)
	fmt.Fprintf(w, "ccserve_queries_total %d\n", queries)
	fmt.Fprintf(w, "ccserve_compactions_total %d\n", compactions)
	fmt.Fprintf(w, "ccserve_cluster_jobs_open %d\n", clJobs)
	fmt.Fprintf(w, "ccserve_cluster_opens_total %d\n", clOpens)
	fmt.Fprintf(w, "ccserve_cluster_frames_in_total %d\n", clFrames)
	fmt.Fprintf(w, "ccserve_cluster_frame_bytes_total %d\n", clFrameBytes)
	fmt.Fprintf(w, "ccserve_cluster_adoptions_total %d\n", clAdoptions)
	fmt.Fprintf(w, "ccserve_cluster_errors_total %d\n", clErrors)
	fmt.Fprintf(w, "ccserve_worker_slots %d\n", cap(s.sem))
	fmt.Fprintf(w, "ccserve_job_workers %d\n", s.cfg.JobWorkers)
	// The push plane: watch streams, broker fan-out, verdict gossip.
	fmt.Fprintf(w, "ccserve_watch_streams %d\n", s.watchConns.Load())
	fmt.Fprintf(w, "ccserve_watch_topics %d\n", s.broker.Topics())
	fmt.Fprintf(w, "ccserve_events_published_total %d\n", s.broker.Published())
	fmt.Fprintf(w, "ccserve_watch_evictions_total %d\n", s.broker.Evictions())
	fmt.Fprintf(w, "ccserve_gossip_ingested_total %d\n", gossipIngests)
	if g := s.cfg.Gossip; g != nil {
		fmt.Fprintf(w, "ccserve_gossip_log_seq %d\n", g.Seq())
		fmt.Fprintf(w, "ccserve_gossip_corrupt_total %d\n", g.Corrupt())
	}
	s.hist.render(w, "ccserve_http_request_seconds")
	fmt.Fprintf(w, "ccserve_uptime_seconds %g\n", time.Since(s.start).Seconds())
}
