package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/serve"
	"repro/internal/store"
)

func newTestServer(t *testing.T, dir string) *httptest.Server {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Store: st, Jobs: 2, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any, []byte) {
	t.Helper()
	resp, v, raw := postResp(t, url, body)
	return resp.StatusCode, v, raw
}

// postResp is postJSON keeping the response, for header assertions
// (the body is already consumed and closed).
func postResp(t *testing.T, url string, body any) (*http.Response, map[string]any, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var v map[string]any
	json.Unmarshal(raw, &v)
	return resp, v, raw
}

// wantRetryAfter asserts a shed response carries a positive integer
// Retry-After — the contract every 429/503 from the server honours.
func wantRetryAfter(t *testing.T, resp *http.Response) {
	t.Helper()
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatalf("%d response has no Retry-After header", resp.StatusCode)
	}
	if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Fatalf("Retry-After %q is not a positive integer", ra)
	}
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// waitDone polls a job until it leaves the queue.
func waitDone(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		code, raw := get(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: %d %s", id, code, raw)
		}
		var v map[string]any
		json.Unmarshal(raw, &v)
		switch v["status"] {
		case serve.StatusDone, serve.StatusFailed:
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

func jobSpec(alg, daemon string) store.JobSpec {
	return store.JobSpec{Alg: alg, Topo: "ring:3", Daemon: daemon, Init: "legit"}
}

// TestJobLifecycle: submit → poll → result; identical resubmission is
// served without recomputation, byte-identically.
func TestJobLifecycle(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	code, v, _ := postJSON(t, ts.URL+"/v1/jobs", jobSpec("cc2", "central"))
	if code != http.StatusAccepted {
		t.Fatalf("first POST: %d %v", code, v)
	}
	id, _ := v["id"].(string)
	if id == "" {
		t.Fatalf("no id in %v", v)
	}
	if id != jobSpec("cc2", "central").Key() {
		t.Fatalf("job id %s is not the content key", id)
	}
	final := waitDone(t, ts.URL, id)
	if final["status"] != serve.StatusDone || final["verdict"] != "verified" {
		t.Fatalf("job did not verify: %v", final)
	}
	code, res1 := get(t, ts.URL+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, res1)
	}
	var decoded struct {
		Violations []any
		States     float64
	}
	if err := json.Unmarshal(res1, &decoded); err != nil {
		t.Fatalf("result not an explore.Result: %v", err)
	}

	// Resubmit: must not recompute, must say cached, and the verdict
	// body must be byte-identical.
	code, v2, _ := postJSON(t, ts.URL+"/v1/jobs", jobSpec("cc2", "central"))
	if code != http.StatusOK {
		t.Fatalf("resubmit: %d %v", code, v2)
	}
	if v2["cached"] != true {
		t.Fatalf("resubmit not reported cached: %v", v2)
	}
	_, res2 := get(t, ts.URL+"/v1/jobs/"+id+"/result")
	if !bytes.Equal(res1, res2) {
		t.Fatal("resubmitted verdict body differs")
	}

	// A fresh server over the same store serves the verdict from disk,
	// byte-identically — the cross-process cache-hit contract the CI
	// smoke asserts over HTTP.
	ts2 := newTestServer(t, storeDirOf(t, ts))
	code, v3, _ := postJSON(t, ts2.URL+"/v1/jobs", jobSpec("cc2", "central"))
	if code != http.StatusOK || v3["cached"] != true || v3["status"] != serve.StatusDone {
		t.Fatalf("restart submit: %d %v", code, v3)
	}
	_, res3 := get(t, ts2.URL+"/v1/jobs/"+id+"/result")
	if !bytes.Equal(res1, res3) {
		t.Fatal("verdict body differs across server restart")
	}
}

// storeDirOf digs the cache dir out of /healthz, so restart tests
// reuse it without plumbing.
func storeDirOf(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	_, raw := get(t, ts.URL+"/healthz")
	var v map[string]any
	json.Unmarshal(raw, &v)
	dir, _ := v["cache_dir"].(string)
	if dir == "" {
		t.Fatalf("no cache_dir in healthz: %s", raw)
	}
	return dir
}

func metric(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	_, raw := get(t, ts.URL+"/metrics")
	for _, line := range strings.Split(string(raw), "\n") {
		if f, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, raw)
	return 0
}

// TestConcurrentDuplicateSubmissions is the serving acceptance test:
// 64 concurrent submissions of a mixed campaign (4 distinct specs)
// dedupe in flight — each identical spec is explored exactly once —
// and every response converges on the same verdict bytes.
func TestConcurrentDuplicateSubmissions(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	specs := []store.JobSpec{
		jobSpec("cc1", "central"), jobSpec("cc1", "synchronous"),
		jobSpec("cc2", "central"), jobSpec("cc2", "synchronous"),
	}
	const n = 64
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _ := json.Marshal(specs[i%len(specs)])
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("submission %d: %d %s", i, resp.StatusCode, raw)
				return
			}
			var v map[string]any
			json.Unmarshal(raw, &v)
			ids[i], _ = v["id"].(string)
		}(i)
	}
	wg.Wait()

	// All 64 submissions resolved to the 4 content addresses.
	distinct := map[string]bool{}
	for i, id := range ids {
		if id == "" {
			t.Fatalf("submission %d got no id", i)
		}
		distinct[id] = true
	}
	if len(distinct) != len(specs) {
		t.Fatalf("%d distinct job ids, want %d", len(distinct), len(specs))
	}
	results := map[string][]byte{}
	for id := range distinct {
		if v := waitDone(t, ts.URL, id); v["status"] != serve.StatusDone {
			t.Fatalf("job %s: %v", id, v)
		}
		_, raw := get(t, ts.URL+"/v1/jobs/"+id+"/result")
		results[id] = raw
	}
	if got := metric(t, ts, "ccserve_jobs_executed_total"); got != float64(len(specs)) {
		t.Fatalf("executed %v explorations, want %d (in-flight dedupe failed)", got, len(specs))
	}
	if got := metric(t, ts, "ccserve_jobs_submitted_total"); got != n {
		t.Fatalf("submitted %v, want %d", got, n)
	}
	if got := metric(t, ts, "ccserve_jobs_deduped_total"); got != n-float64(len(specs)) {
		t.Fatalf("deduped %v, want %d", got, n-len(specs))
	}
	// Resubmitting the whole batch now reports cached verdicts with the
	// same bytes.
	for _, s := range specs {
		code, v, _ := postJSON(t, ts.URL+"/v1/jobs", s)
		if code != http.StatusOK || v["cached"] != true {
			t.Fatalf("post-batch resubmit: %d %v", code, v)
		}
		_, raw := get(t, ts.URL+"/v1/jobs/"+s.Key()+"/result")
		if !bytes.Equal(raw, results[s.Key()]) {
			t.Fatalf("verdict bytes changed for %s", s)
		}
	}
}

// TestCampaignEndpoints: a campaign fans through the same job
// machinery, aggregates deterministically in expansion order, and
// reports cache hits on resubmission after a restart.
func TestCampaignEndpoints(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	cspec := map[string]any{
		"algs": []string{"cc1", "cc2"}, "topos": []string{"ring:3"},
		"daemons": []string{"central", "synchronous"}, "inits": []string{"legit"},
	}
	code, v, _ := postJSON(t, ts.URL+"/v1/campaigns", cspec)
	if code != http.StatusAccepted {
		t.Fatalf("POST campaign: %d %v", code, v)
	}
	id, _ := v["id"].(string)
	if id == "" || v["cells"] != float64(4) {
		t.Fatalf("campaign response: %v", v)
	}

	var agg map[string]any
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, raw := get(t, ts.URL+"/v1/campaigns/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET campaign: %d %s", code, raw)
		}
		json.Unmarshal(raw, &agg)
		if agg["status"] == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never finished: %v", agg)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if agg["verified"] != float64(4) || agg["violated"] != float64(0) || agg["failed"] != float64(0) {
		t.Fatalf("aggregate: %v", agg)
	}
	results := agg["results"].([]any)
	if len(results) != 4 {
		t.Fatalf("results: %v", results)
	}
	// Expansion order: cc1 before cc2, central before synchronous.
	first := results[0].(map[string]any)["spec"].(map[string]any)
	if first["alg"] != "cc1" || first["daemon"] != "central" {
		t.Fatalf("results not in expansion order: %v", first)
	}

	// Same campaign on a fresh server over the same store: all cells
	// are cache hits, and the aggregate matches.
	ts2 := newTestServer(t, storeDirOf(t, ts))
	code, v2, _ := postJSON(t, ts2.URL+"/v1/campaigns", cspec)
	if code != http.StatusAccepted {
		t.Fatalf("restart POST campaign: %d %v", code, v2)
	}
	if v2["id"] != id {
		t.Fatalf("campaign id not content-addressed: %v vs %v", v2["id"], id)
	}
	var agg2 map[string]any
	_, raw := get(t, ts2.URL+"/v1/campaigns/"+id)
	json.Unmarshal(raw, &agg2)
	if agg2["status"] != "done" || agg2["cache_hits"] != float64(4) {
		t.Fatalf("restarted campaign not served from cache: %v", agg2)
	}
	if metric(t, ts2, "ccserve_jobs_executed_total") != 0 {
		t.Fatal("restarted server explored despite full cache")
	}
	if metric(t, ts2, "ccserve_cache_hit_ratio") != 1 {
		t.Fatal("hit ratio should be 1 on the restarted server")
	}
}

// TestEvictionRehydration: finished jobs past the retention bound are
// evicted from memory and transparently re-hydrated from the store by
// their content key — byte-identical verdicts, no 404s, no unbounded
// growth.
func TestEvictionRehydration(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Store: st, Jobs: 1, JobWorkers: 1, RetainJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	specs := []store.JobSpec{
		jobSpec("cc1", "central"), jobSpec("cc1", "synchronous"), jobSpec("cc2", "central"),
	}
	bodies := map[string][]byte{}
	for _, sp := range specs {
		_, v, _ := postJSON(t, ts.URL+"/v1/jobs", sp)
		id, _ := v["id"].(string)
		waitDone(t, ts.URL, id)
		_, raw := get(t, ts.URL+"/v1/jobs/"+id+"/result")
		bodies[id] = raw
	}
	// With RetainJobs=1 the first two jobs are long evicted; their ids
	// must still resolve, cached, with the same bytes.
	for _, sp := range specs {
		id := sp.Key()
		code, raw := get(t, ts.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("evicted job %s: %d %s", id[:12], code, raw)
		}
		var v map[string]any
		json.Unmarshal(raw, &v)
		if v["status"] != serve.StatusDone {
			t.Fatalf("evicted job %s: %v", id[:12], v)
		}
		_, res := get(t, ts.URL+"/v1/jobs/"+id+"/result")
		if !bytes.Equal(res, bodies[id]) {
			t.Fatalf("evicted job %s: verdict bytes changed", id[:12])
		}
		// Resubmission after eviction is a store hit, not a recompute.
		code, v2, _ := postJSON(t, ts.URL+"/v1/jobs", sp)
		if code != http.StatusOK || v2["cached"] != true {
			t.Fatalf("resubmit after eviction: %d %v", code, v2)
		}
	}
	if got := metric(t, ts, "ccserve_jobs_executed_total"); got != float64(len(specs)) {
		t.Fatalf("executed %v, want %d (eviction must not cause recomputes)", got, len(specs))
	}
}

// TestQueueBound: submissions past MaxQueue are shed with 429 + a
// Retry-After hint, counted in the rejected metric, and do not pin the
// key against resubmission.
func TestQueueBound(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Store: st, Jobs: 1, JobWorkers: 1, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Occupy the single worker slot with a slower job, queue one, then
	// overflow.
	// The slot-holder must outlive the two submissions below by a wide
	// margin on a loaded 1-CPU box: ring:4 cc-full all-subsets bounded
	// to 500k states runs for seconds regardless of engine speed.
	slow := store.JobSpec{Alg: "cc2", Topo: "ring:4", Daemon: "all-subsets", Init: "cc-full", MaxStates: 500_000}
	code, _, _ := postJSON(t, ts.URL+"/v1/jobs", slow)
	if code != http.StatusAccepted {
		t.Fatalf("slow job: %d", code)
	}
	// Wait until it holds the worker slot (queued 1 → running 1), so
	// the next submission deterministically occupies the queue.
	for deadline := time.Now().Add(5 * time.Second); metric(t, ts, "ccserve_jobs_running") != 1; {
		if time.Now().After(deadline) {
			t.Fatal("slow job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queuedSpec := jobSpec("cc1", "central")
	code, _, _ = postJSON(t, ts.URL+"/v1/jobs", queuedSpec)
	if code != http.StatusAccepted {
		t.Fatalf("queued job: %d", code)
	}
	rejectedSpec := jobSpec("cc1", "synchronous")
	resp, v, _ := postResp(t, ts.URL+"/v1/jobs", rejectedSpec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: %d %v, want 429", resp.StatusCode, v)
	}
	wantRetryAfter(t, resp)
	if metric(t, ts, "ccserve_jobs_rejected_total") != 1 {
		t.Fatal("rejection not counted")
	}
	// The rejected record fails in place (a concurrent joiner holding
	// the id must poll into the failure, not a 404) ...
	code, raw := get(t, ts.URL+"/v1/jobs/"+rejectedSpec.Key())
	var rv map[string]any
	json.Unmarshal(raw, &rv)
	if code != http.StatusOK || rv["status"] != serve.StatusFailed || !strings.Contains(raw2s(rv["error"]), "queue") {
		t.Fatalf("rejected job: %d %v", code, rv)
	}
	// ... and does not pin the key: once the queue drains, the same
	// spec resubmits fresh and runs.
	waitDone(t, ts.URL, slow.Key())
	waitDone(t, ts.URL, queuedSpec.Key())
	code, _, _ = postJSON(t, ts.URL+"/v1/jobs", rejectedSpec)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("resubmission after drain: %d", code)
	}
	if v := waitDone(t, ts.URL, rejectedSpec.Key()); v["status"] != serve.StatusDone {
		t.Fatalf("retried job did not run: %v", v)
	}
}

func raw2s(v any) string { s, _ := v.(string); return s }

// TestValidation: malformed and invalid submissions are 400s with a
// message, unknown ids are 404s, and the state-bound cap holds.
func TestValidation(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	for name, body := range map[string]string{
		"bad json":      `{"alg":`,
		"unknown field": `{"alg":"cc2","topo":"ring:3","nope":1}`,
		"unknown alg":   `{"alg":"cc9","topo":"ring:3"}`,
		"bad daemon":    `{"alg":"cc2","topo":"ring:3","daemon":"centrall"}`,
		"bad topo":      `{"alg":"cc2","topo":"ring:0"}`,
		"over cap":      `{"alg":"cc2","topo":"ring:3","max_states":99000000}`,
		"unlimited":     `{"alg":"cc2","topo":"ring:3","max_states":-1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s", name, resp.StatusCode, raw)
		}
		var v map[string]any
		if json.Unmarshal(raw, &v) != nil || v["error"] == "" {
			t.Errorf("%s: no error message in %s", name, raw)
		}
	}
	resp, _ := http.Post(ts.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"algs":["cc1","cc9"],"topos":["ring:3"]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad campaign: %d", resp.StatusCode)
	}
	resp.Body.Close()

	for _, path := range []string{"/v1/jobs/deadbeef", "/v1/jobs/deadbeef/result", "/v1/campaigns/deadbeef"} {
		code, _ := get(t, ts.URL+path)
		if code != http.StatusNotFound {
			t.Errorf("%s: %d, want 404", path, code)
		}
	}
}

// TestHealthzAndMetrics: the liveness and metrics surfaces exist and
// carry the advertised gauges.
func TestHealthzAndMetrics(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	code, raw := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(raw), `"ok": true`) {
		t.Fatalf("healthz: %d %s", code, raw)
	}
	for _, name := range []string{
		"ccserve_jobs_submitted_total", "ccserve_cache_hit_ratio",
		"ccserve_states_per_second", "ccserve_queue_depth",
		"ccserve_jobs_running", "ccserve_worker_slots",
	} {
		metric(t, ts, name) // fails the test if absent
	}
	if metric(t, ts, "ccserve_worker_slots") != 2 {
		t.Fatal("worker slots should mirror Config.Jobs")
	}

	// A pending-result poll answers 202 while queued or running.
	spec := store.JobSpec{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "cc"}
	_, v, _ := postJSON(t, ts.URL+"/v1/jobs", spec)
	id, _ := v["id"].(string)
	code, _ = get(t, ts.URL+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("pending result: %d", code)
	}
	waitDone(t, ts.URL, id)
	if got := metric(t, ts, "ccserve_states_explored_total"); got <= 0 {
		t.Fatalf("states_explored_total = %v after a job", got)
	}
}

// TestReadyz: the readiness surface reports ready/closed-breaker on a
// healthy server, while /healthz stays a pure liveness probe.
func TestReadyz(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	code, raw := get(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz: %d %s", code, raw)
	}
	var v map[string]any
	json.Unmarshal(raw, &v)
	if v["ready"] != true || v["degraded"] != false || v["breaker"] != "closed" {
		t.Fatalf("readyz: %v", v)
	}
}

// TestDrainShedding: once Drain starts, submissions and /readyz answer
// 503 with Retry-After (readiness fails) while /healthz stays 200
// (liveness holds) — the split that lets an orchestrator stop routing
// without killing the pod early.
func TestDrainShedding(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Store: st, Jobs: 1, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	if !s.Drain(5 * time.Second) {
		t.Fatal("drain of an idle server did not complete")
	}

	resp, v, raw := postResp(t, ts.URL+"/v1/jobs", jobSpec("cc1", "central"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: %d %v, want 503", resp.StatusCode, v)
	}
	wantRetryAfter(t, resp)
	wantEnvelope(t, "drain shed", raw, "unavailable")

	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", rresp.StatusCode)
	}
	wantRetryAfter(t, rresp)

	if code, raw := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while draining: %d %s, want 200 (liveness is not readiness)", code, raw)
	}
}

// TestInFlightShedding: requests past MaxInFlight are shed with 429 +
// Retry-After before touching any server state, and the observability
// endpoints stay exempt.
func TestInFlightShedding(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Store: st, Jobs: 1, JobWorkers: 1, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Park one request inside the handler by streaming its body slowly:
	// the JSON decoder blocks until the pipe delivers the spec.
	pr, pw := io.Pipe()
	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", pr)
		if err != nil {
			firstDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	inFlight := func() float64 {
		_, raw := get(t, ts.URL+"/readyz")
		var v map[string]any
		json.Unmarshal(raw, &v)
		f, _ := v["in_flight"].(float64)
		return f
	}
	for deadline := time.Now().Add(5 * time.Second); inFlight() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("parked request never registered in flight")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, v, raw := postResp(t, ts.URL+"/v1/jobs", jobSpec("cc1", "central"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap request: %d %v, want 429", resp.StatusCode, v)
	}
	wantRetryAfter(t, resp)
	wantEnvelope(t, "in-flight shed", raw, "shed")
	if metric(t, ts, "ccserve_requests_shed_total") != 1 {
		t.Fatal("shed request not counted")
	}

	// Release the parked request; it proceeds normally.
	data, _ := json.Marshal(jobSpec("cc2", "central"))
	pw.Write(data)
	pw.Close()
	if code := <-firstDone; code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("parked request finished with %d", code)
	}
}

// TestJobTimeout: a job past Config.JobTimeout fails with a timeout
// message instead of running forever — and the server distinguishes it
// from a shutdown interruption in the metrics.
func TestJobTimeout(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{
		Store: st, Jobs: 1, JobWorkers: 1,
		JobTimeout: time.Millisecond, CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	heavy := store.JobSpec{Alg: "cc2", Topo: "ring:4", Daemon: "all-subsets", Init: "cc-full"}
	_, v, _ := postJSON(t, ts.URL+"/v1/jobs", heavy)
	id, _ := v["id"].(string)
	final := waitDone(t, ts.URL, id)
	if final["status"] != serve.StatusFailed || !strings.Contains(raw2s(final["error"]), "timeout") {
		t.Fatalf("heavy job under 1ms timeout: %v", final)
	}
	if metric(t, ts, "ccserve_jobs_timed_out_total") != 1 {
		t.Fatal("timeout not counted")
	}
	if metric(t, ts, "ccserve_jobs_interrupted_total") != 0 {
		t.Fatal("timeout misclassified as shutdown interruption")
	}
}

// TestStoreBreakerComputeOnly: store-write failures trip the breaker,
// the server keeps serving correct verdicts compute-only (degraded, not
// down), and a healed store closes the breaker through the half-open
// probe — the serving layer's stabilization property.
func TestStoreBreakerComputeOnly(t *testing.T) {
	dir := t.TempDir()
	ffs := chaos.NewFaultFS(nil, chaos.Faults{})
	st, err := store.OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{
		Store: st, Jobs: 1, JobWorkers: 1, CheckpointEvery: -1,
		BreakerFailures: 1, BreakerCooldown: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Break the disk: every write-side op fails permanently (EACCES),
	// so the store Put fails fast and trips the 1-failure breaker.
	ffs.SetFaults(chaos.Faults{WriteErr: 1, Permanent: 1})
	specA := jobSpec("cc1", "central")
	_, v, _ := postJSON(t, ts.URL+"/v1/jobs", specA)
	id, _ := v["id"].(string)
	if final := waitDone(t, ts.URL, id); final["status"] != serve.StatusDone || final["verdict"] != "verified" {
		t.Fatalf("job under a broken store must still verify from memory: %v", final)
	}
	if metric(t, ts, "ccserve_store_failures_total") < 1 {
		t.Fatal("store failure not counted")
	}
	if metric(t, ts, "ccserve_breaker_trips_total") != 1 {
		t.Fatal("breaker did not trip")
	}

	// While open: jobs complete compute-only, nothing touches the disk.
	specB := jobSpec("cc1", "synchronous")
	_, v, _ = postJSON(t, ts.URL+"/v1/jobs", specB)
	id, _ = v["id"].(string)
	if final := waitDone(t, ts.URL, id); final["status"] != serve.StatusDone {
		t.Fatalf("compute-only job: %v", final)
	}

	// Heal the disk; after the cooldown the next job's Put is the
	// half-open probe and closes the breaker.
	ffs.SetFaults(chaos.Faults{})
	closed := false
	for i, deadline := 0, time.Now().Add(15*time.Second); !closed && time.Now().Before(deadline); i++ {
		time.Sleep(100 * time.Millisecond)
		// Distinct MaxStates → distinct content keys (Seed is
		// canonicalized away for non-random inits), so every probe is a
		// fresh job that actually exercises a store Put.
		probe := store.JobSpec{Alg: "cc1", Topo: "ring:3", Daemon: "central", Init: "legit", MaxStates: 10_000 + i}
		_, pv, _ := postJSON(t, ts.URL+"/v1/jobs", probe)
		pid, _ := pv["id"].(string)
		waitDone(t, ts.URL, pid)
		_, raw := get(t, ts.URL+"/readyz")
		var rv map[string]any
		json.Unmarshal(raw, &rv)
		closed = rv["breaker"] == "closed"
	}
	if !closed {
		t.Fatal("breaker never closed after the store healed")
	}
	if metric(t, ts, "ccserve_breaker_state") != 0 {
		t.Fatal("breaker state gauge should read closed")
	}
	// The compute-only verdict was never persisted: resubmitting B on a
	// healed store recomputes (correctly) rather than hitting the cache.
	if _, _, hit := st.Get(specB.Canonical()); hit {
		t.Fatal("compute-only job leaked a store entry while the breaker was open")
	}
}

// TestHTTPErrorSurface sweeps the general API's refusal paths beyond
// spec validation: oversized payloads, ill-shaped ids, and the wrong
// method on every route — each must produce the right status code, and
// the refusals the server classifies as client errors must move the
// bad-request counter so operators can see a misbehaving client.
func TestHTTPErrorSurface(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	badBefore := metric(t, ts, "ccserve_bad_requests_total")

	big := strings.Repeat("x", 2<<20) // past the 1 MiB spec bound
	for _, tc := range []struct {
		name string
		path string
		body string
		want int
	}{
		{"oversized job body", "/v1/jobs", `{"alg":"` + big + `"}`, http.StatusBadRequest},
		{"oversized campaign body", "/v1/campaigns", `{"algs":["` + big + `"]}`, http.StatusBadRequest},
		{"campaign bad json", "/v1/campaigns", `{"algs":`, http.StatusBadRequest},
		{"campaign unknown field", "/v1/campaigns", `{"algs":["cc1"],"topos":["ring:3"],"bogus":1}`, http.StatusBadRequest},
		{"campaign empty grid", "/v1/campaigns", `{"algs":[],"topos":[]}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: got %d (%s), want %d", tc.name, resp.StatusCode, raw, tc.want)
		}
		wantEnvelope(t, tc.name, raw, "bad_request")
	}

	// Ill-shaped ids (not hex, traversal attempts) must be clean 404s,
	// never 500s or path escapes — each carrying the envelope, whether
	// it came from a handler or from the mux via the envelope writer.
	for _, path := range []string{
		"/v1/jobs/not-a-key", "/v1/jobs/..%2f..%2fetc/result", "/v1/campaigns/%00",
		"/v1/nope", "/totally/unrouted",
	} {
		code, raw := get(t, ts.URL+path)
		if code != http.StatusNotFound {
			t.Fatalf("GET %s: got %d, want 404", path, code)
		}
		wantEnvelope(t, "GET "+path, raw, "not_found")
	}

	// The wrong method on every route is a 405 from the mux, not a
	// handler-level surprise.
	for _, m := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs"},
		{http.MethodDelete, "/v1/jobs"},
		{http.MethodPost, "/v1/jobs/deadbeef"},
		{http.MethodPost, "/v1/jobs/deadbeef/result"},
		{http.MethodGet, "/v1/campaigns"},
		{http.MethodPost, "/v1/campaigns/deadbeef"},
		{http.MethodPost, "/v1/campaigns/diff"},
		{http.MethodPost, "/v1/verdicts"},
		{http.MethodPost, "/v1/store/stats"},
		{http.MethodGet, "/v1/store/compact"},
		{http.MethodPost, "/healthz"},
		{http.MethodPost, "/readyz"},
		{http.MethodPost, "/metrics"},
	} {
		req, err := http.NewRequest(m.method, ts.URL+m.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: got %d, want 405", m.method, m.path, resp.StatusCode)
		}
		wantEnvelope(t, m.method+" "+m.path, raw, "method_not_allowed")
	}

	if after := metric(t, ts, "ccserve_bad_requests_total"); after <= badBefore {
		t.Fatalf("bad-request counter did not move: %g -> %g", badBefore, after)
	}

	// A valid submission still works after the abuse — the error paths
	// must not wedge the server.
	code, v, raw := postJSON(t, ts.URL+"/v1/jobs", jobSpec("cc2", "central"))
	if code != http.StatusOK && code != http.StatusAccepted && code != http.StatusCreated {
		t.Fatalf("valid submission after error sweep: %d %s", code, raw)
	}
	if id, _ := v["id"].(string); id != "" {
		waitDone(t, ts.URL, id)
	}
}
