// The push half of the result plane: SSE watch endpoints over the
// pubsub broker, the gossip mount, and the request-latency histogram.
//
//	GET /v1/jobs/{id}/watch       progress + terminal verdict events
//	GET /v1/campaigns/{id}/watch  per-cell terminal events + campaign done
//
// Both speak text/event-stream and honor Last-Event-ID (or ?after=N)
// for resume. The broker never blocks a publisher: a watcher that
// stops reading is evicted — its stream just ends — and reconnects
// with its watermark. Watchers who arrive after a job is already
// terminal get a synthesized terminal event (Seq 0, so their
// watermark is untouched) built from the job record or the verdict
// store, which is why retiring a topic never strands a client.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/explore"
	"repro/internal/pubsub"
)

// progressEvery throttles progress publishes per job: chunk
// boundaries arrive far faster than any dashboard redraws.
const progressEvery = 100 * time.Millisecond

// keepaliveEvery is the SSE comment cadence that holds idle watch
// connections open through proxies.
const keepaliveEvery = 15 * time.Second

// progressView is the data payload of a progress event.
type progressView struct {
	ID           string  `json:"id"`
	States       int     `json:"states"`
	Frontier     int     `json:"frontier"`
	Depth        int     `json:"depth"`
	Transitions  int64   `json:"transitions"`
	StatesPerSec float64 `json:"states_per_sec"`
}

// cellView is the data payload of a campaign cell event.
type cellView struct {
	Campaign string `json:"campaign"`
	Cell     string `json:"cell"`
	Status   string `json:"status"`
	Verdict  string `json:"verdict,omitempty"`
	Done     int    `json:"done"`
	Cells    int    `json:"cells"`
}

func jobTopic(key string) string     { return "job/" + key }
func campaignTopic(id string) string { return "campaign/" + id }
func terminal(status string) bool    { return status == StatusDone || status == StatusFailed }
func terminalType(status string) string {
	if status == StatusFailed {
		return pubsub.TypeFailed
	}
	return pubsub.TypeVerdict
}

// progressFunc builds the explore.Progress hook for one job: a
// time-throttled publish of the counter snapshot. It runs on the
// exploration goroutine at chunk boundaries, so it must stay cheap —
// Publish is non-blocking by construction.
func (s *Server) progressFunc(key string) func(explore.Progress) {
	start := time.Now()
	var last time.Time
	return func(p explore.Progress) {
		now := time.Now()
		if now.Sub(last) < progressEvery {
			return
		}
		last = now
		perSec := 0.0
		if el := now.Sub(start).Seconds(); el > 0 {
			perSec = float64(p.States) / el
		}
		s.broker.Publish(jobTopic(key), pubsub.TypeProgress, progressView{
			ID: key, States: p.States, Frontier: p.Frontier, Depth: p.Depth,
			Transitions: p.Transitions, StatesPerSec: perSec,
		})
	}
}

// publishJobTerminalLocked pushes a job's terminal event to its topic
// and fans per-cell events out to every campaign the cell belongs to.
// Caller holds s.mu.
func (s *Server) publishJobTerminalLocked(j *job) {
	v := s.view(j)
	s.broker.Publish(jobTopic(j.key), terminalType(j.status), v)
	for _, cid := range s.cellCampaigns[j.key] {
		if c := s.campaigns[cid]; c != nil {
			s.publishCellLocked(c, j)
		}
	}
}

// publishCellLocked records one cell's terminal state on its campaign
// topic and, when it is the last, the campaign's done event. Caller
// holds s.mu. Idempotent per (campaign, cell).
func (s *Server) publishCellLocked(c *camp, j *job) {
	if c.doneSent || c.terminal[j.key] {
		return
	}
	c.terminal[j.key] = true
	v := s.view(j)
	s.broker.Publish(campaignTopic(c.id), pubsub.TypeCell, cellView{
		Campaign: c.id, Cell: j.key, Status: j.status, Verdict: v.Verdict,
		Done: len(c.terminal), Cells: len(c.keys),
	})
	if len(c.terminal) == len(c.keys) {
		c.doneSent = true
		s.broker.Publish(campaignTopic(c.id), pubsub.TypeDone, map[string]any{
			"campaign": c.id, "cells": len(c.keys),
		})
	}
}

// GossipIngested is the gossip node's OnIngest hook: a verdict that
// just arrived from a peer resolves any local watchers immediately
// instead of at their next poll.
func (s *Server) GossipIngested(key string) {
	j := s.hydrate(key) // disk read, outside the lock
	if j == nil {
		return
	}
	s.mu.Lock()
	s.gossipIngests++
	s.publishJobTerminalLocked(j)
	s.mu.Unlock()
	s.logf("job %s verdict arrived via gossip", key[:12])
}

// lastEventID resolves the watch resume watermark: the SSE
// Last-Event-ID header, or ?after=N for plain curl. Unparseable
// values mean "from the start", per the SSE contract.
func lastEventID(r *http.Request) uint64 {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("after")
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func (s *Server) handleWatchJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.getJob(id)
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	s.streamTopic(w, r, jobTopic(id), lastEventID(r), func() (pubsub.Event, bool) {
		s.mu.Lock()
		defer s.mu.Unlock()
		cur := s.jobs[id]
		if cur == nil {
			cur = j // hydrated from the store: terminal by construction
		}
		if !terminal(cur.status) {
			return pubsub.Event{}, false
		}
		data, err := json.Marshal(s.view(cur))
		if err != nil {
			return pubsub.Event{}, false
		}
		return pubsub.Event{Type: terminalType(cur.status), Data: data}, true
	})
}

func (s *Server) handleWatchCampaign(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	keys, ok := s.campaignKeys(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	s.streamTopic(w, r, campaignTopic(id), lastEventID(r), func() (pubsub.Event, bool) {
		cv := s.campaignStatus(id, keys)
		if cv.Status != "done" {
			return pubsub.Event{}, false
		}
		cv.Results = nil // the aggregate, not the whole grid
		data, err := json.Marshal(cv)
		if err != nil {
			return pubsub.Event{}, false
		}
		return pubsub.Event{Type: pubsub.TypeDone, Data: data}, true
	})
}

// streamTopic runs one SSE watch: subscribe (with replay past the
// client's watermark), close the arrived-too-late race with a
// synthesized terminal event, then stream until a terminal event, an
// eviction, or the client hanging up. synth reports the watched
// object's current state: a (terminal event, true) when it is already
// finished.
func (s *Server) streamTopic(w http.ResponseWriter, r *http.Request, topic string, after uint64, synth func() (pubsub.Event, bool)) {
	fl, canFlush := w.(http.Flusher)
	flush := func() {
		if canFlush {
			fl.Flush()
		}
	}
	sub := s.broker.Subscribe(topic, after)
	defer sub.Close()
	s.watchConns.Add(1)
	defer s.watchConns.Add(-1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	write := func(ev pubsub.Event) bool {
		w.Write(pubsub.AppendSSE(nil, ev))
		flush()
		return pubsub.IsTerminal(ev.Type)
	}

	// Replay whatever the subscription already holds (ring contents
	// past the watermark).
	done := false
	for !done {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			done = write(ev)
		default:
			// Queue drained. If the watched object went terminal before we
			// subscribed (its topic possibly retired, ring gone), the
			// synthesized event — Seq 0, no id line, watermark untouched —
			// is the terminal the replay could not deliver.
			if ev, isTerm := synth(); isTerm {
				done = write(ev)
			}
			goto live
		}
	}
	return

live:
	if done {
		return
	}
	keepalive := time.NewTicker(keepaliveEvery)
	defer keepalive.Stop()
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				// Evicted as a slow consumer: end the stream; the client
				// reconnects with Last-Event-ID and resumes from the ring.
				return
			}
			if write(ev) {
				return
			}
		case <-keepalive.C:
			w.Write([]byte(": keepalive\n\n"))
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// campaignStatus builds the campaign aggregate (the GET body and the
// watch synthesizer share it).
func (s *Server) campaignStatus(id string, keys []string) campaignView {
	s.mu.Lock()
	views := make([]jobView, len(keys))
	missing := make([]bool, len(keys))
	for i, k := range keys {
		if j := s.jobs[k]; j != nil {
			views[i] = s.view(j)
		} else {
			missing[i] = true
		}
	}
	s.mu.Unlock()
	for i := range keys {
		if !missing[i] {
			continue
		}
		// Evicted cell: re-hydrate its verdict from the store (disk
		// I/O, hence outside the lock).
		if j := s.hydrate(keys[i]); j != nil {
			views[i] = s.view(j)
		} else {
			views[i] = jobView{ID: keys[i], Status: StatusUnknown}
		}
	}

	v := campaignView{ID: id, Cells: len(keys), Results: views}
	for _, jv := range views {
		if jv.Status == StatusDone || jv.Status == StatusFailed {
			v.Done++
		}
		if jv.Cached {
			v.CacheHits++
		}
		switch jv.Verdict {
		case "verified":
			v.Verified++
		case "bounded":
			v.Bounded++
		case "violated":
			v.Violated++
		}
		if jv.Status == StatusFailed {
			v.Failed++
		}
	}
	v.Status = "running"
	if v.Done == v.Cells {
		v.Status = "done"
	}
	return v
}

// latencyBuckets are the histogram's upper bounds in seconds
// (exponential, ~1ms to 10s — verification API calls, not
// exploration runtimes).
const latencyBucketCount = 13

var latencyBuckets = [latencyBucketCount]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// latencyHist is a lock-free fixed-bucket latency histogram for
// /metrics: one counter per bucket (non-cumulative internally,
// rendered cumulatively the Prometheus way) plus sum and count.
type latencyHist struct {
	counts   [latencyBucketCount + 1]atomic.Int64 // +1 = +Inf
	sumNanos atomic.Int64
	count    atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && sec > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(d.Nanoseconds())
	h.count.Add(1)
}

// render writes the histogram in Prometheus text format under name.
func (h *latencyHist) render(w http.ResponseWriter, name string) {
	cum := int64(0)
	for i, le := range latencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, le, cum)
	}
	cum += h.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNanos.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}
