package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/pubsub"
	"repro/internal/serve"
	"repro/internal/store"
)

// watchStream opens an SSE watch and decodes events until the first
// terminal event (verdict/failed/done), the stream ending, or the
// timeout. It returns every event seen, terminal last when one
// arrived.
func watchStream(t *testing.T, url string, lastEventID uint64, timeout time.Duration) []pubsub.Event {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(lastEventID))
	}
	cl := &http.Client{Timeout: timeout}
	resp, err := cl.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch %s: content-type %q", url, ct)
	}
	dec := pubsub.NewDecoder(resp.Body)
	var evs []pubsub.Event
	for {
		ev, err := dec.Next()
		if err != nil {
			return evs // server closed the stream (eviction or terminal already sent)
		}
		evs = append(evs, ev)
		if pubsub.IsTerminal(ev.Type) {
			return evs
		}
	}
}

func terminalOf(t *testing.T, evs []pubsub.Event) pubsub.Event {
	t.Helper()
	if len(evs) == 0 || !pubsub.IsTerminal(evs[len(evs)-1].Type) {
		t.Fatalf("no terminal event in stream: %+v", evs)
	}
	return evs[len(evs)-1]
}

// TestWatchJobStream: submit a job and watch it to completion over
// SSE. Whether the watcher arrives before the verdict (live event) or
// after (synthesized event), exactly one terminal frame ends the
// stream and it carries the same view a GET would.
func TestWatchJobStream(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	_, v, _ := postJSON(t, ts.URL+"/v1/jobs", jobSpec("cc1", "central"))
	id, _ := v["id"].(string)

	evs := watchStream(t, ts.URL+"/v1/jobs/"+id+"/watch", 0, 30*time.Second)
	term := terminalOf(t, evs)
	if term.Type != pubsub.TypeVerdict {
		t.Fatalf("terminal type %q, want %q", term.Type, pubsub.TypeVerdict)
	}
	var jv map[string]any
	if err := json.Unmarshal(term.Data, &jv); err != nil {
		t.Fatal(err)
	}
	if jv["id"] != id || jv["status"] != serve.StatusDone || jv["verdict"] != "verified" {
		t.Fatalf("terminal payload: %s", term.Data)
	}
	// Any non-terminal frames must be progress events for this job.
	for _, ev := range evs[:len(evs)-1] {
		if ev.Type != pubsub.TypeProgress {
			t.Fatalf("unexpected %q event before the terminal", ev.Type)
		}
	}
	// The poll plane agrees with the push plane.
	if final := waitDone(t, ts.URL, id); final["verdict"] != jv["verdict"] {
		t.Fatalf("watch verdict %v != poll verdict %v", jv["verdict"], final["verdict"])
	}
}

// TestWatchAlreadyDone: a watcher arriving after the job is terminal —
// including one resuming past the end of the ring — gets the
// synthesized terminal immediately instead of hanging.
func TestWatchAlreadyDone(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	_, v, _ := postJSON(t, ts.URL+"/v1/jobs", jobSpec("cc2", "central"))
	id, _ := v["id"].(string)
	waitDone(t, ts.URL, id)

	for _, after := range []uint64{0, 1 << 60} {
		done := make(chan []pubsub.Event, 1)
		go func() { done <- watchStream(t, ts.URL+"/v1/jobs/"+id+"/watch", after, 10*time.Second) }()
		select {
		case evs := <-done:
			term := terminalOf(t, evs)
			if term.Type != pubsub.TypeVerdict {
				t.Fatalf("after=%d: terminal type %q", after, term.Type)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("after=%d: watch of a finished job hung", after)
		}
	}
}

// TestWatchHydratedJob: watching a job whose in-memory record was
// evicted (RetainJobs pressure) re-hydrates the verdict from the store
// and synthesizes the terminal — eviction never strands a watcher.
func TestWatchHydratedJob(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Store: st, Jobs: 1, JobWorkers: 1, RetainJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	_, v, _ := postJSON(t, ts.URL+"/v1/jobs", jobSpec("cc1", "central"))
	first, _ := v["id"].(string)
	waitDone(t, ts.URL, first)
	// A second finished job evicts the first (RetainJobs: 1).
	_, v, _ = postJSON(t, ts.URL+"/v1/jobs", jobSpec("cc1", "synchronous"))
	second, _ := v["id"].(string)
	waitDone(t, ts.URL, second)

	// Resume past the ring so the replay cannot answer: the synthesizer
	// must reach for the store-hydrated record.
	evs := watchStream(t, ts.URL+"/v1/jobs/"+first+"/watch", 1<<60, 10*time.Second)
	term := terminalOf(t, evs)
	var jv map[string]any
	json.Unmarshal(term.Data, &jv)
	if jv["id"] != first || jv["cached"] != true {
		t.Fatalf("hydrated terminal payload: %s", term.Data)
	}
}

func TestWatchUnknown404(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	for _, path := range []string{"/v1/jobs/nope/watch", "/v1/campaigns/nope/watch"} {
		code, raw := get(t, ts.URL+path)
		if code != http.StatusNotFound {
			t.Fatalf("%s: status %d, body %s", path, code, raw)
		}
	}
}

// TestWatchCampaignStream: a campaign watch delivers one cell event
// per cell and a final done event — for a fresh grid and again for an
// all-cache-hits resubmission (where every event comes from the
// registration sweep via ring replay).
func TestWatchCampaignStream(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	grid := map[string]any{
		"algs": []string{"cc1", "cc2"}, "topos": []string{"ring:3"},
		"daemons": []string{"central"}, "inits": []string{"legit"},
	}
	for round, name := range []string{"fresh", "resubmitted"} {
		_, v, _ := postJSON(t, ts.URL+"/v1/campaigns", grid)
		id, _ := v["id"].(string)
		if id == "" {
			t.Fatalf("round %d: no campaign id: %v", round, v)
		}

		evs := watchStream(t, ts.URL+"/v1/campaigns/"+id+"/watch", 0, 30*time.Second)
		term := terminalOf(t, evs)
		if term.Type != pubsub.TypeDone {
			t.Fatalf("%s: terminal type %q, want done", name, term.Type)
		}
		var dv map[string]any
		json.Unmarshal(term.Data, &dv)
		if dv["cells"] != 2.0 {
			t.Fatalf("%s: done event cells = %v, want 2: %s", name, dv["cells"], term.Data)
		}
		cells := map[string]bool{}
		for _, ev := range evs[:len(evs)-1] {
			if ev.Type != pubsub.TypeCell {
				t.Fatalf("%s: unexpected %q event", name, ev.Type)
			}
			var cv map[string]any
			json.Unmarshal(ev.Data, &cv)
			cells[cv["cell"].(string)] = true
		}
		// The fresh round must narrate every cell: the registration sweep
		// plus ring replay covers cells that finished before the watch
		// opened. The resubmitted round's topic may already be retired
		// (all cells were cache hits, the first watcher consumed the
		// done) — then the synthesized done above is the whole story.
		if round == 0 && len(cells) != 2 {
			t.Fatalf("%s: saw %d distinct cell events, want 2: %+v", name, len(cells), evs)
		}
	}
}

// TestWatchResumeWatermark: reconnecting with Last-Event-ID at the
// stream's high watermark replays nothing old — the synthesized
// terminal (Seq 0, watermark untouched) is the only frame.
func TestWatchResumeWatermark(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	grid := map[string]any{"algs": []string{"cc1"}, "topos": []string{"ring:3"},
		"daemons": []string{"central", "synchronous"}, "inits": []string{"legit"}}
	_, v, _ := postJSON(t, ts.URL+"/v1/campaigns", grid)
	id, _ := v["id"].(string)

	evs := watchStream(t, ts.URL+"/v1/campaigns/"+id+"/watch", 0, 30*time.Second)
	var hi uint64
	for _, ev := range evs {
		if ev.Seq > hi {
			hi = ev.Seq
		}
	}
	if hi == 0 {
		t.Fatalf("no sequenced events in first watch: %+v", evs)
	}
	resumed := watchStream(t, ts.URL+"/v1/campaigns/"+id+"/watch", hi, 10*time.Second)
	for _, ev := range resumed {
		if ev.Seq != 0 && ev.Seq <= hi {
			t.Fatalf("resume at %d replayed old event %+v", hi, ev)
		}
	}
	if term := terminalOf(t, resumed); term.Seq != 0 {
		t.Fatalf("resumed terminal should be synthesized (Seq 0), got Seq %d", term.Seq)
	}
}

// TestWatchNoDroppedTerminals is the in-process zero-drop gate: many
// watchers per job, opened while the jobs race to completion, and
// every single one must receive exactly one terminal event.
func TestWatchNoDroppedTerminals(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	const jobs, watchersPer = 8, 4
	ids := make([]string, jobs)
	for i := range ids {
		spec := jobSpec("cc1", "central")
		spec.MaxStates = 5_000 + i // distinct content keys
		_, v, _ := postJSON(t, ts.URL+"/v1/jobs", spec)
		ids[i], _ = v["id"].(string)
	}

	var wg sync.WaitGroup
	terminals := make([]int, jobs*watchersPer)
	for i, id := range ids {
		for w := 0; w < watchersPer; w++ {
			wg.Add(1)
			go func(slot int, id string) {
				defer wg.Done()
				evs := watchStream(t, ts.URL+"/v1/jobs/"+id+"/watch", 0, 60*time.Second)
				for _, ev := range evs {
					if pubsub.IsTerminal(ev.Type) {
						terminals[slot]++
					}
				}
			}(i*watchersPer+w, id)
		}
	}
	wg.Wait()
	for slot, n := range terminals {
		if n != 1 {
			t.Fatalf("watcher %d saw %d terminal events, want exactly 1", slot, n)
		}
	}
	if metric(t, ts, "ccserve_watch_evictions_total") != 0 {
		t.Fatal("watchers were evicted during the zero-drop battery")
	}
}

// TestJobErrorClassSurfaced pins the poll-era gap: a job failing on
// classified I/O (a permanent spill-write fault) must expose the error
// class through GET /v1/jobs/{id} and the failed watch event, not just
// a free-text message.
func TestJobErrorClassSurfaced(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ffs := chaos.NewFaultFS(nil, chaos.Faults{WriteErr: 1, Permanent: 1})
	s, err := serve.New(serve.Config{
		Store: st, Jobs: 1, JobWorkers: 1, CheckpointEvery: -1,
		MemBudget: 1 << 12, SpillDir: t.TempDir(), FS: ffs,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	_, v, _ := postJSON(t, ts.URL+"/v1/jobs", jobSpec("cc2", "central"))
	id, _ := v["id"].(string)
	final := waitDone(t, ts.URL, id)
	if final["status"] != serve.StatusFailed {
		t.Fatalf("spill under a permanent write fault must fail the job: %v", final)
	}
	if final["error_class"] != "permanent" {
		t.Fatalf("error_class = %v, want %q (error: %v)", final["error_class"], "permanent", final["error"])
	}

	// The push plane carries the same classification.
	term := terminalOf(t, watchStream(t, ts.URL+"/v1/jobs/"+id+"/watch", 0, 10*time.Second))
	if term.Type != pubsub.TypeFailed {
		t.Fatalf("terminal type %q, want failed", term.Type)
	}
	var jv map[string]any
	json.Unmarshal(term.Data, &jv)
	if jv["error_class"] != "permanent" {
		t.Fatalf("watch terminal error_class = %v: %s", jv["error_class"], term.Data)
	}
}

// TestWatchMetrics: the push plane and the latency histogram are
// observable — stream/topic gauges return to zero, publishes count,
// and every API request lands in ccserve_http_request_seconds.
func TestWatchMetrics(t *testing.T) {
	ts := newTestServer(t, t.TempDir())
	_, v, _ := postJSON(t, ts.URL+"/v1/jobs", jobSpec("cc1", "central"))
	id, _ := v["id"].(string)
	watchStream(t, ts.URL+"/v1/jobs/"+id+"/watch", 0, 30*time.Second)

	if metric(t, ts, "ccserve_watch_streams") != 0 {
		t.Fatal("watch stream gauge did not return to zero")
	}
	if metric(t, ts, "ccserve_events_published_total") < 1 {
		t.Fatal("no events counted as published")
	}
	if metric(t, ts, "ccserve_http_request_seconds_count") < 1 {
		t.Fatal("latency histogram observed no requests")
	}
	if metric(t, ts, "ccserve_http_request_seconds_sum") <= 0 {
		t.Fatal("latency histogram sum is zero")
	}
	_, raw := get(t, ts.URL+"/metrics")
	body := string(raw)
	for _, le := range []string{`le="0.001"`, `le="1"`, `le="+Inf"`} {
		if !strings.Contains(body, "ccserve_http_request_seconds_bucket{"+le+"}") {
			t.Fatalf("histogram bucket %s missing from /metrics:\n%s", le, body)
		}
	}
}
