package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// This file is the batch successor API: the run-to-completion pipeline
// counterpart of successors.go. A BatchKernel evaluates every guard of a
// configuration in one call (returning the enabled set as a bitmask) and
// caches the chosen action per process, so an explorer expanding states
// in bulk pays one columnar pass instead of per-process interface-call
// chains. MaskSuccessors then enumerates daemon selections as bitmasks in
// exactly the branch order of SuccessorsBuf, so a batch pipeline built on
// the two produces byte-identical reports to the scalar path.

// BatchKernel evaluates a Program's guards for whole configurations at a
// time. Implementations may precompute shared sub-predicates across all
// processes (struct-of-arrays columns, per-edge bitsets) as long as the
// observable results match the scalar semantics exactly:
//
//   - Eval(cfg) must return the bitmask {1<<p : enabledAction(prog,cfg,p) >= 0}
//     and is only defined for programs with NumProcs <= 64.
//   - After Eval, Action(p) must equal enabledAction(prog, cfg, p) for
//     every enabled p (callers must not ask about disabled processes).
//   - Apply(cfg, p, next) must behave exactly like the scalar body of the
//     chosen action: read the pre-step cfg, mutate only *next. next is
//     pre-initialized to a clone of cfg[p] by the caller.
//
// A kernel is single-goroutine scratch (like SuccScratch): each explorer
// worker owns one.
type BatchKernel[S Cloneable[S]] interface {
	// Eval evaluates all guards against cfg and returns the enabled set
	// as a bitmask (bit p = process p enabled). It caches the chosen
	// highest-priority action per enabled process for Action/Apply.
	Eval(cfg []S) uint64
	// Action returns the cached chosen action index (into
	// Program.Actions) for enabled process p after the last Eval.
	Action(p int) int
	// Apply executes the cached chosen action of p against cfg, writing
	// the successor state of p into next (pre-cloned from cfg[p]).
	Apply(cfg []S, p int, next *S)
}

// ChosenAction returns the highest-priority enabled action index of p in
// cfg, or -1 if p is disabled — the exact scalar semantics a BatchKernel
// must reproduce. Exported for differential and fuzz cross-checks.
func ChosenAction[S Cloneable[S]](prog *Program[S], cfg []S, p int) int {
	return enabledAction(prog, cfg, p)
}

// programKernel is the generic BatchKernel: scalar guard evaluation per
// process with cached action indices. It gives any Program the batch
// pipeline's structure (and its selection enumeration) without columnar
// speedups — correct by construction, and the fallback explorers use for
// programs without a hand-built kernel.
type programKernel[S Cloneable[S]] struct {
	prog *Program[S]
	acts []int
	rng  *rand.Rand
}

// NewProgramKernel builds the generic BatchKernel for prog. Panics if the
// program has more than 64 processes (the enabled set must fit a word).
func NewProgramKernel[S Cloneable[S]](prog *Program[S]) BatchKernel[S] {
	if prog.NumProcs > 64 {
		panic(fmt.Sprintf("sim: NewProgramKernel over %d processes (max 64)", prog.NumProcs))
	}
	return &programKernel[S]{
		prog: prog,
		acts: make([]int, prog.NumProcs),
		rng:  rand.New(rand.NewSource(1)),
	}
}

func (k *programKernel[S]) Eval(cfg []S) uint64 {
	var enabled uint64
	for p := 0; p < k.prog.NumProcs; p++ {
		a := enabledAction(k.prog, cfg, p)
		k.acts[p] = a
		if a >= 0 {
			enabled |= uint64(1) << p
		}
	}
	return enabled
}

func (k *programKernel[S]) Action(p int) int { return k.acts[p] }

func (k *programKernel[S]) Apply(cfg []S, p int, next *S) {
	k.prog.Actions[k.acts[p]].Body(cfg, p, next, k.rng)
}

// MaskSuccessors enumerates the daemon selections of SuccessorsBuf as
// bitmasks over the enabled set: visit is called once per branch with the
// selected-process mask, in exactly SuccessorsBuf's branch order, with
// exactly its maxBranches cap semantics (checked before each branch; 0 =
// unlimited) and its panic on unbounded all-subsets enumeration over more
// than 30 enabled processes. visit returning false stops early. Returns
// the number of branches visited.
//
//   - SelectCentral: one branch per enabled process, ascending.
//   - SelectSynchronous: the single branch selecting every enabled process.
//   - SelectAllSubsets: every non-empty subset, in binary-counter order
//     over the enabled processes' ascending index positions — the same
//     masks, same order as SuccessorsBuf's incremental enumeration.
func MaskSuccessors(enabled uint64, mode SelectionMode, maxBranches int, visit func(selMask uint64) bool) int {
	branches := 0
	if enabled == 0 {
		return 0
	}
	switch mode {
	case SelectCentral:
		for rest := enabled; rest != 0; rest &= rest - 1 {
			if maxBranches > 0 && branches >= maxBranches {
				return branches
			}
			branches++
			if !visit(rest & -rest) {
				return branches
			}
		}
	case SelectSynchronous:
		if maxBranches > 0 && branches >= maxBranches {
			return branches
		}
		branches++
		visit(enabled)
	case SelectAllSubsets:
		k := bits.OnesCount64(enabled)
		if maxBranches <= 0 && k > 30 {
			panic(fmt.Sprintf("sim: unbounded SelectAllSubsets over %d enabled processes (2^%d branches); pass maxBranches to truncate", k, k))
		}
		// idx[i] = process index of the i-th enabled bit, so counter bit
		// i stands for process idx[i], exactly like en[i] in
		// SuccessorsBuf.
		var idx [64]int
		i := 0
		for rest := enabled; rest != 0; rest &= rest - 1 {
			idx[i] = bits.TrailingZeros64(rest)
			i++
		}
		last := ^uint64(0)
		if k < 64 {
			last = uint64(1)<<k - 1
		}
		// Counter-order enumeration with the selection mask maintained
		// incrementally from the counter's flipped bits (amortized two
		// toggles per increment), mirroring successors.go.
		prev := uint64(0)
		sel := uint64(0)
		for mask := uint64(1); ; mask++ {
			if maxBranches > 0 && branches >= maxBranches {
				return branches
			}
			for diff := (mask ^ prev) & last; diff != 0; diff &= diff - 1 {
				sel ^= uint64(1) << idx[bits.TrailingZeros64(diff)]
			}
			prev = mask
			branches++
			if !visit(sel) {
				return branches
			}
			if mask == last {
				break
			}
		}
	default:
		panic(fmt.Sprintf("sim: unknown SelectionMode %d", int(mode)))
	}
	return branches
}
