package sim

import (
	"math/rand"
	"sort"
)

// Daemon selects, at each step, a non-empty subset of the enabled
// processes (paper §2.2: "distributed" means at least one, maybe more).
// Implementations must not retain the enabled slice.
//
// Weak fairness — "every continuously enabled process is eventually
// selected" — is a property of a daemon's computations. Synchronous and
// the aging daemons below guarantee it deterministically; the random
// daemons satisfy it with probability 1.
type Daemon interface {
	Name() string
	Select(enabled []int, step int, rng *rand.Rand) []int
}

// Synchronous selects every enabled process. It is distributed and
// (trivially) weakly fair.
type Synchronous struct{}

func (Synchronous) Name() string { return "synchronous" }

func (Synchronous) Select(enabled []int, _ int, _ *rand.Rand) []int {
	return append([]int(nil), enabled...)
}

// Central selects exactly one enabled process, round-robin by process id
// starting after the previously selected one — a weakly fair central
// daemon.
type Central struct{ last int }

func (*Central) Name() string { return "central-rr" }

func (c *Central) Select(enabled []int, _ int, _ *rand.Rand) []int {
	// Pick the smallest enabled id strictly greater than last, wrapping.
	best := -1
	for _, p := range enabled {
		if p > c.last && (best == -1 || p < best) {
			best = p
		}
	}
	if best == -1 {
		for _, p := range enabled {
			if best == -1 || p < best {
				best = p
			}
		}
	}
	c.last = best
	return []int{best}
}

// CentralRandom selects exactly one enabled process uniformly at random
// (weakly fair with probability 1).
type CentralRandom struct{}

func (CentralRandom) Name() string { return "central-random" }

func (CentralRandom) Select(enabled []int, _ int, rng *rand.Rand) []int {
	return []int{enabled[rng.Intn(len(enabled))]}
}

// RandomSubset includes each enabled process independently with
// probability P (default 0.5), re-drawing until non-empty. It is the
// usual probabilistic model of the distributed unfair daemon; weakly fair
// with probability 1.
type RandomSubset struct{ P float64 }

func (RandomSubset) Name() string { return "random-subset" }

func (d RandomSubset) Select(enabled []int, _ int, rng *rand.Rand) []int {
	p := d.P
	if p <= 0 || p > 1 {
		p = 0.5
	}
	var sel []int
	for len(sel) == 0 {
		sel = sel[:0]
		for _, q := range enabled {
			if rng.Float64() < p {
				sel = append(sel, q)
			}
		}
	}
	return sel
}

// WeaklyFair is a distributed daemon with a deterministic weak-fairness
// guarantee: it behaves like RandomSubset but force-includes any process
// that has been continuously enabled for MaxAge steps without executing.
// This is the default daemon for the paper's liveness experiments, which
// assume a distributed weakly fair daemon.
type WeaklyFair struct {
	P      float64 // inclusion probability (default 0.5)
	MaxAge int     // force-include threshold (default 8)

	age map[int]int
}

func (*WeaklyFair) Name() string { return "weakly-fair" }

func (d *WeaklyFair) Select(enabled []int, _ int, rng *rand.Rand) []int {
	p := d.P
	if p <= 0 || p > 1 {
		p = 0.5
	}
	maxAge := d.MaxAge
	if maxAge <= 0 {
		maxAge = 8
	}
	if d.age == nil {
		d.age = make(map[int]int)
	}
	inEnabled := make(map[int]bool, len(enabled))
	for _, q := range enabled {
		inEnabled[q] = true
	}
	// A process not currently enabled was neutralized or executed; its
	// "continuously enabled" clock restarts.
	for q := range d.age {
		if !inEnabled[q] {
			delete(d.age, q)
		}
	}
	var sel []int
	for _, q := range enabled {
		if d.age[q]+1 >= maxAge || rng.Float64() < p {
			sel = append(sel, q)
		}
	}
	if len(sel) == 0 {
		sel = append(sel, enabled[rng.Intn(len(enabled))])
	}
	selected := make(map[int]bool, len(sel))
	for _, q := range sel {
		selected[q] = true
	}
	for _, q := range enabled {
		if selected[q] {
			delete(d.age, q)
		} else {
			d.age[q]++
		}
	}
	sort.Ints(sel)
	return sel
}

// Scripted replays a fixed schedule: at step i it selects
// Schedule[i] ∩ enabled (panicking if that intersection is empty, since a
// daemon must select at least one enabled process). After the schedule is
// exhausted it delegates to Fallback (or Synchronous if nil). Used by the
// Figure 3 replay and by adversarial constructions (e.g., the Theorem 1
// starvation schedule).
type Scripted struct {
	Schedule [][]int
	Fallback Daemon
	pos      int
}

func (*Scripted) Name() string { return "scripted" }

func (d *Scripted) Select(enabled []int, step int, rng *rand.Rand) []int {
	if d.pos >= len(d.Schedule) {
		fb := d.Fallback
		if fb == nil {
			fb = Synchronous{}
		}
		return fb.Select(enabled, step, rng)
	}
	want := d.Schedule[d.pos]
	d.pos++
	inEnabled := make(map[int]bool, len(enabled))
	for _, q := range enabled {
		inEnabled[q] = true
	}
	var sel []int
	for _, q := range want {
		if inEnabled[q] {
			sel = append(sel, q)
		}
	}
	if len(sel) == 0 {
		panic("sim: scripted daemon selected only disabled processes")
	}
	return sel
}

// Exhausted reports whether the script has been fully consumed.
func (d *Scripted) Exhausted() bool { return d.pos >= len(d.Schedule) }

// Adversary wraps an arbitrary selection function (for impossibility
// constructions). The function must return a non-empty subset of enabled.
type Adversary struct {
	Label string
	Fn    func(enabled []int, step int, rng *rand.Rand) []int
}

func (a Adversary) Name() string {
	if a.Label == "" {
		return "adversary"
	}
	return a.Label
}

func (a Adversary) Select(enabled []int, step int, rng *rand.Rand) []int {
	return a.Fn(enabled, step, rng)
}
