package sim

import (
	"math/rand"
	"slices"
)

// Daemon selects, at each step, a non-empty subset of the enabled
// processes (paper §2.2: "distributed" means at least one, maybe more).
//
// Select appends its selection to dst — which the engine passes with
// length 0 but non-trivial capacity, so steady-state selection performs
// no allocation — and returns the resulting slice. Implementations must
// not retain dst, the returned slice, or the enabled slice beyond the
// call; the engine reuses all three buffers on the next step.
//
// The engine never calls Select on a terminal configuration, but other
// drivers (tests, exploration harnesses) may: every daemon in this
// package returns dst unchanged when enabled is empty.
//
// Weak fairness — "every continuously enabled process is eventually
// selected" — is a property of a daemon's computations. Synchronous and
// the aging daemons below guarantee it deterministically; the random
// daemons satisfy it with probability 1.
type Daemon interface {
	Name() string
	Select(dst, enabled []int, step int, rng *rand.Rand) []int
}

// Synchronous selects every enabled process. It is distributed and
// (trivially) weakly fair.
type Synchronous struct{}

func (Synchronous) Name() string { return "synchronous" }

func (Synchronous) Select(dst, enabled []int, _ int, _ *rand.Rand) []int {
	return append(dst, enabled...)
}

// Central selects exactly one enabled process, round-robin by process id
// starting after the previously selected one — a weakly fair central
// daemon.
type Central struct{ last int }

func (*Central) Name() string { return "central-rr" }

func (c *Central) Select(dst, enabled []int, _ int, _ *rand.Rand) []int {
	if len(enabled) == 0 {
		return dst
	}
	// Pick the smallest enabled id strictly greater than last, wrapping.
	best := -1
	for _, p := range enabled {
		if p > c.last && (best == -1 || p < best) {
			best = p
		}
	}
	if best == -1 {
		for _, p := range enabled {
			if best == -1 || p < best {
				best = p
			}
		}
	}
	c.last = best
	return append(dst, best)
}

// CentralRandom selects exactly one enabled process uniformly at random
// (weakly fair with probability 1).
type CentralRandom struct{}

func (CentralRandom) Name() string { return "central-random" }

func (CentralRandom) Select(dst, enabled []int, _ int, rng *rand.Rand) []int {
	if len(enabled) == 0 {
		return dst
	}
	return append(dst, enabled[rng.Intn(len(enabled))])
}

// RandomSubset includes each enabled process independently with
// probability P (default 0.5), re-drawing until non-empty. It is the
// usual probabilistic model of the distributed unfair daemon; weakly fair
// with probability 1.
type RandomSubset struct{ P float64 }

func (RandomSubset) Name() string { return "random-subset" }

func (d RandomSubset) Select(dst, enabled []int, _ int, rng *rand.Rand) []int {
	if len(enabled) == 0 {
		return dst
	}
	p := d.P
	if p <= 0 || p > 1 {
		p = 0.5
	}
	sel := dst
	for {
		sel = sel[:len(dst)]
		for _, q := range enabled {
			if rng.Float64() < p {
				sel = append(sel, q)
			}
		}
		if len(sel) > len(dst) {
			return sel
		}
	}
}

// WeaklyFair is a distributed daemon with a deterministic weak-fairness
// guarantee: it behaves like RandomSubset but force-includes any process
// that has been continuously enabled for MaxAge steps without executing.
// This is the default daemon for the paper's liveness experiments, which
// assume a distributed weakly fair daemon.
type WeaklyFair struct {
	P      float64 // inclusion probability (default 0.5)
	MaxAge int     // force-include threshold (default 8)

	age  []int  // age[q]: steps q has been continuously enabled without executing
	prev []int  // the enabled set of the previous call (procs whose age may be non-zero)
	mark []bool // scratch membership bitmap
}

func (*WeaklyFair) Name() string { return "weakly-fair" }

// grow extends the per-process bookkeeping to cover process ids < n.
func (d *WeaklyFair) grow(n int) {
	for len(d.age) < n {
		d.age = append(d.age, 0)
		d.mark = append(d.mark, false)
	}
}

func (d *WeaklyFair) Select(dst, enabled []int, _ int, rng *rand.Rand) []int {
	if len(enabled) == 0 {
		// Every previously enabled process was neutralized or executed;
		// its "continuously enabled" clock restarts.
		for _, q := range d.prev {
			d.age[q] = 0
		}
		d.prev = d.prev[:0]
		return dst
	}
	p := d.P
	if p <= 0 || p > 1 {
		p = 0.5
	}
	maxAge := d.MaxAge
	if maxAge <= 0 {
		maxAge = 8
	}
	n := 0
	for _, q := range enabled {
		if q+1 > n {
			n = q + 1
		}
	}
	d.grow(n)
	// A process not currently enabled was neutralized or executed; its
	// "continuously enabled" clock restarts.
	for _, q := range enabled {
		d.mark[q] = true
	}
	for _, q := range d.prev {
		if !d.mark[q] {
			d.age[q] = 0
		}
	}
	for _, q := range enabled {
		d.mark[q] = false
	}
	sel := dst
	for _, q := range enabled {
		if d.age[q]+1 >= maxAge || rng.Float64() < p {
			sel = append(sel, q)
		}
	}
	if len(sel) == len(dst) {
		sel = append(sel, enabled[rng.Intn(len(enabled))])
	}
	picked := sel[len(dst):]
	for _, q := range picked {
		d.mark[q] = true
	}
	for _, q := range enabled {
		if d.mark[q] {
			d.age[q] = 0
		} else {
			d.age[q]++
		}
	}
	for _, q := range picked {
		d.mark[q] = false
	}
	d.prev = append(d.prev[:0], enabled...)
	slices.Sort(picked)
	return sel
}

// Scripted replays a fixed schedule: at step i it selects
// Schedule[i] ∩ enabled (panicking if that intersection is empty, since a
// daemon must select at least one enabled process). After the schedule is
// exhausted it delegates to Fallback (or Synchronous if nil). Used by the
// Figure 3 replay and by adversarial constructions (e.g., the Theorem 1
// starvation schedule).
type Scripted struct {
	Schedule [][]int
	Fallback Daemon
	pos      int
}

func (*Scripted) Name() string { return "scripted" }

func (d *Scripted) Select(dst, enabled []int, step int, rng *rand.Rand) []int {
	if len(enabled) == 0 {
		return dst
	}
	if d.pos >= len(d.Schedule) {
		fb := d.Fallback
		if fb == nil {
			fb = Synchronous{}
		}
		return fb.Select(dst, enabled, step, rng)
	}
	want := d.Schedule[d.pos]
	d.pos++
	sel := dst
	for _, q := range want {
		for _, x := range enabled {
			if x == q {
				sel = append(sel, q)
				break
			}
		}
	}
	if len(sel) == len(dst) {
		panic("sim: scripted daemon selected only disabled processes")
	}
	return sel
}

// Exhausted reports whether the script has been fully consumed.
func (d *Scripted) Exhausted() bool { return d.pos >= len(d.Schedule) }

// Adversary wraps an arbitrary selection function (for impossibility
// constructions). The function must return a non-empty subset of enabled.
type Adversary struct {
	Label string
	Fn    func(enabled []int, step int, rng *rand.Rand) []int
}

func (a Adversary) Name() string {
	if a.Label == "" {
		return "adversary"
	}
	return a.Label
}

func (a Adversary) Select(dst, enabled []int, step int, rng *rand.Rand) []int {
	if len(enabled) == 0 {
		return dst
	}
	return append(dst, a.Fn(enabled, step, rng)...)
}
