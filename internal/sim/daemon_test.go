package sim_test

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/sim"
)

// allDaemons instantiates one of each daemon in daemon.go. Fresh
// instances per call: Central and WeaklyFair carry state across Select
// calls.
func allDaemons() []sim.Daemon {
	return []sim.Daemon{
		sim.Synchronous{},
		&sim.Central{},
		sim.CentralRandom{},
		sim.RandomSubset{P: 0.5},
		&sim.WeaklyFair{MaxAge: 4},
		// Exhausted schedule → fallback path; a live schedule panics on
		// enabled sets that miss its entries (by design, covered below).
		&sim.Scripted{Fallback: sim.Synchronous{}},
		sim.Adversary{Label: "first", Fn: func(enabled []int, _ int, _ *rand.Rand) []int {
			return enabled[:1]
		}},
	}
}

// TestDaemonSelectTable drives every daemon through the Select
// edge cases: empty enabled set, a single enabled process, and the full
// process set — asserting the Daemon contract each time (selection is a
// non-empty duplicate-free subset of enabled, appended to dst; empty
// enabled returns dst unchanged).
func TestDaemonSelectTable(t *testing.T) {
	cases := []struct {
		name    string
		enabled []int
	}{
		{"empty", nil},
		{"single", []int{3}},
		{"pair", []int{1, 4}},
		{"full", []int{0, 1, 2, 3, 4, 5}},
	}
	for _, d := range allDaemons() {
		rng := rand.New(rand.NewSource(7))
		for _, tc := range cases {
			for step := 0; step < 8; step++ { // repeated calls reuse internal state
				dst := make([]int, 0, 8)
				sel := d.Select(dst, tc.enabled, step, rng)
				if len(tc.enabled) == 0 {
					if len(sel) != 0 {
						t.Fatalf("%s/%s: empty enabled set selected %v", d.Name(), tc.name, sel)
					}
					continue
				}
				if len(sel) == 0 {
					t.Fatalf("%s/%s: selected nothing from %v", d.Name(), tc.name, tc.enabled)
				}
				seen := map[int]bool{}
				for _, p := range sel {
					if !slices.Contains(tc.enabled, p) {
						t.Fatalf("%s/%s: selected disabled process %d", d.Name(), tc.name, p)
					}
					if seen[p] {
						t.Fatalf("%s/%s: selected process %d twice", d.Name(), tc.name, p)
					}
					seen[p] = true
				}
				if len(tc.enabled) == 1 && (len(sel) != 1 || sel[0] != tc.enabled[0]) {
					t.Fatalf("%s/%s: single enabled process not selected: %v", d.Name(), tc.name, sel)
				}
			}
		}
	}
}

// TestDaemonSelectAppendsToPrefix: Select must append to dst, leaving
// any existing prefix intact — the engine relies on this to reuse its
// selection buffer allocation-free.
func TestDaemonSelectAppendsToPrefix(t *testing.T) {
	enabled := []int{0, 2, 5}
	for _, d := range allDaemons() {
		rng := rand.New(rand.NewSource(3))
		prefix := []int{97, 98}
		dst := append(make([]int, 0, 16), prefix...)
		sel := d.Select(dst, enabled, 0, rng)
		if len(sel) < len(prefix) || sel[0] != 97 || sel[1] != 98 {
			t.Fatalf("%s: prefix clobbered: %v", d.Name(), sel)
		}
		if len(sel) == len(prefix) {
			t.Fatalf("%s: nothing appended for enabled %v", d.Name(), enabled)
		}
		for _, p := range sel[len(prefix):] {
			if !slices.Contains(enabled, p) {
				t.Fatalf("%s: appended disabled process %d", d.Name(), p)
			}
		}
	}
}

// TestDaemonSelectBufferReuse simulates the engine's buffer discipline:
// the same backing array is passed to consecutive Select calls (sliced
// back to length zero), and each selection must be valid independent of
// what the previous call left in the array.
func TestDaemonSelectBufferReuse(t *testing.T) {
	sets := [][]int{{0, 1, 2, 3}, {2}, {1, 3}, {0, 1, 2, 3, 4, 5, 6, 7}, {5}}
	for _, d := range allDaemons() {
		rng := rand.New(rand.NewSource(11))
		buf := make([]int, 0, 8)
		for step, enabled := range sets {
			sel := d.Select(buf[:0], enabled, step, rng)
			for _, p := range sel {
				if !slices.Contains(enabled, p) {
					t.Fatalf("%s step %d: stale selection %v for enabled %v", d.Name(), step, sel, enabled)
				}
			}
			if len(sel) == 0 {
				t.Fatalf("%s step %d: empty selection", d.Name(), step)
			}
			if cap(sel) == cap(buf) {
				buf = sel // engine keeps the (possibly grown) buffer
			}
		}
	}
}

// TestWeaklyFairEmptyEnabledResetsAges: after a call with no enabled
// process, previously aged processes must not be treated as
// continuously enabled (their force-include clocks restart).
func TestWeaklyFairEmptyEnabledResetsAges(t *testing.T) {
	d := &sim.WeaklyFair{P: 0.0001, MaxAge: 3}
	rng := rand.New(rand.NewSource(5))
	enabled := []int{0, 1}
	// Age process 1 close to the force-include threshold.
	for i := 0; i < 2; i++ {
		d.Select(nil, enabled, i, rng)
	}
	// A gap with nothing enabled: clocks restart.
	d.Select(nil, nil, 2, rng)
	// With P≈0 a fresh clock cannot force-include immediately.
	sel := d.Select(make([]int, 0, 4), enabled, 3, rng)
	if len(sel) == 0 {
		t.Fatal("weakly-fair selected nothing")
	}
	// Enabled continuously from here: MaxAge calls later every process
	// must have been selected at least once.
	chosen := map[int]bool{}
	for _, p := range sel {
		chosen[p] = true
	}
	for i := 0; i < 6; i++ {
		for _, p := range d.Select(make([]int, 0, 4), enabled, 4+i, rng) {
			chosen[p] = true
		}
	}
	if !chosen[0] || !chosen[1] {
		t.Fatalf("weak fairness broken after empty-enabled reset: %v", chosen)
	}
}

// TestScriptedEmptyEnabledDoesNotConsumeSchedule: a probe call with an
// empty enabled set must not advance the script position.
func TestScriptedEmptyEnabledDoesNotConsumeSchedule(t *testing.T) {
	d := &sim.Scripted{Schedule: [][]int{{2}}}
	if sel := d.Select(nil, nil, 0, nil); len(sel) != 0 {
		t.Fatalf("scripted selected %v on empty enabled", sel)
	}
	if d.Exhausted() {
		t.Fatal("empty-enabled probe consumed the schedule")
	}
	sel := d.Select(nil, []int{1, 2}, 1, nil)
	if len(sel) != 1 || sel[0] != 2 {
		t.Fatalf("schedule entry lost: %v", sel)
	}
}
