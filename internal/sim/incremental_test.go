package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

// maxProgramLocal is maxProgram with the line topology declared through
// the Locality capability.
func maxProgramLocal(n int) *Program[tstate] {
	p := maxProgram(n)
	p.Locality = func(v int) []int {
		var out []int
		if v > 0 {
			out = append(out, v-1)
		}
		if v < n-1 {
			out = append(out, v+1)
		}
		return out
	}
	return p
}

func freshDaemons() map[string]func() Daemon {
	return map[string]func() Daemon{
		"synchronous":    func() Daemon { return Synchronous{} },
		"central-rr":     func() Daemon { return &Central{} },
		"central-random": func() Daemon { return CentralRandom{} },
		"random-subset":  func() Daemon { return RandomSubset{P: 0.4} },
		"weakly-fair":    func() Daemon { return &WeaklyFair{MaxAge: 5} },
	}
}

// TestIncrementalMatchesFullRescan is the engine-level cross-check: with
// a sound Locality declaration the incremental dirty-set path must
// produce step-for-step identical Exec traces, configurations and round
// counts as the full-rescan path, under every daemon and many seeds.
func TestIncrementalMatchesFullRescan(t *testing.T) {
	const n = 11
	for name, mk := range freshDaemons() {
		for seed := int64(1); seed <= 10; seed++ {
			full := NewEngine(maxProgram(n), mk(), seed)
			incr := NewEngine(maxProgramLocal(n), mk(), seed)
			for step := 0; step < 200; step++ {
				ef := full.Step()
				ei := incr.Step()
				if !reflect.DeepEqual(ef, ei) {
					t.Fatalf("%s seed %d step %d: execs diverge: full=%v incr=%v", name, seed, step, ef, ei)
				}
				if !reflect.DeepEqual(full.Config(), incr.Config()) {
					t.Fatalf("%s seed %d step %d: configs diverge", name, seed, step)
				}
				if ef == nil {
					break
				}
			}
			if full.Rounds() != incr.Rounds() || full.Steps() != incr.Steps() {
				t.Fatalf("%s seed %d: rounds/steps diverge: full=(%d,%d) incr=(%d,%d)",
					name, seed, full.Rounds(), full.Steps(), incr.Rounds(), incr.Steps())
			}
		}
	}
}

// TestIncrementalSurvivesMutation checks the full-rescan fallback after
// MutateProc/SetConfig: corruption mid-run must not leave a stale cache.
func TestIncrementalSurvivesMutation(t *testing.T) {
	const n = 9
	full := NewEngine(maxProgram(n), &WeaklyFair{MaxAge: 4}, 7)
	incr := NewEngine(maxProgramLocal(n), &WeaklyFair{MaxAge: 4}, 7)
	step := func() bool {
		ef, ei := full.Step(), incr.Step()
		if !reflect.DeepEqual(ef, ei) {
			t.Fatalf("execs diverge: full=%v incr=%v", ef, ei)
		}
		return ef != nil
	}
	for i := 0; i < 30; i++ {
		step()
	}
	for _, e := range []*Engine[tstate]{full, incr} {
		e.MutateProc(2, func(s *tstate) { s.X = 99 })
		e.MutateProc(7, func(s *tstate) { s.X = -3 })
	}
	for i := 0; i < 300; i++ {
		if !step() {
			break
		}
	}
	if !incr.Terminal() || !full.Terminal() {
		t.Fatal("both engines should have recovered to terminal")
	}
	if !reflect.DeepEqual(full.Config(), incr.Config()) {
		t.Fatal("post-recovery configs diverge")
	}
}

// externalInputProgram has a guard reading an input predicate outside the
// configuration — the shape of the paper's RequestIn/RequestOut. Callers
// must MarkDirty/MarkAllDirty when the input flips.
func externalInputProgram(n int, want *[]bool) *Program[tstate] {
	return &Program[tstate]{
		NumProcs: n,
		Actions: []Action[tstate]{
			{
				Name:  "serve",
				Guard: func(cfg []tstate, p int) bool { return (*want)[p] && cfg[p].X == 0 },
				Body:  func(cfg []tstate, p int, next *tstate, _ *rand.Rand) { next.X = 1 },
			},
		},
		Init:     func(p int, _ *rand.Rand) tstate { return tstate{} },
		Locality: func(p int) []int { return nil },
	}
}

func TestMarkDirtyPicksUpExternalInputs(t *testing.T) {
	want := make([]bool, 4)
	e := NewEngine(externalInputProgram(4, &want), Synchronous{}, 1)
	if !e.Terminal() {
		t.Fatal("no input requested: must be terminal")
	}
	// Flip an input without telling the engine: the cache is stale by
	// design (the capability contract), so nothing is enabled yet.
	want[2] = true
	if !e.Terminal() {
		t.Fatal("stale cache expected until MarkDirty")
	}
	e.MarkDirty(2)
	en := e.Enabled()
	if len(en) != 1 || en[0] != 2 {
		t.Fatalf("after MarkDirty enabled = %v, want [2]", en)
	}
	want[0], want[3] = true, true
	e.MarkAllDirty()
	if got := len(e.Enabled()); got != 3 {
		t.Fatalf("after MarkAllDirty %d enabled, want 3", got)
	}
	e.Run(10)
	if !e.Terminal() {
		t.Fatal("all requested inputs served")
	}
}

// TestCentralSelectWrap is the regression test for the round-robin wrap
// logic kept through the buffer-filling Daemon migration: after the
// highest enabled id was selected, selection wraps to the smallest.
func TestCentralSelectWrap(t *testing.T) {
	d := &Central{}
	rng := rand.New(rand.NewSource(1))
	pick := func(enabled ...int) int {
		sel := d.Select(nil, enabled, 0, rng)
		if len(sel) != 1 {
			t.Fatalf("central must select exactly one, got %v", sel)
		}
		return sel[0]
	}
	// Non-contiguous ids; last starts at 0, so 3 is next.
	if got := pick(3, 5, 9); got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
	if got := pick(3, 5, 9); got != 5 {
		t.Fatalf("got %d, want 5", got)
	}
	if got := pick(3, 5, 9); got != 9 {
		t.Fatalf("got %d, want 9", got)
	}
	// Wrap: nothing above 9 — back to the smallest enabled.
	if got := pick(3, 5, 9); got != 3 {
		t.Fatalf("wrap: got %d, want 3", got)
	}
	// Enabled set changed shape mid-rotation: still the smallest id
	// strictly greater than the previous pick.
	if got := pick(1, 2, 8); got != 8 {
		t.Fatalf("got %d, want 8", got)
	}
	if got := pick(1, 2, 8); got != 1 {
		t.Fatalf("wrap: got %d, want 1", got)
	}
}

// TestDaemonBuffersReused asserts the Select contract: filling the
// caller's buffer must not allocate once capacity is established.
func TestDaemonBuffersReused(t *testing.T) {
	enabled := []int{0, 1, 2, 3, 4, 5, 6, 7}
	rng := rand.New(rand.NewSource(3))
	for _, d := range []Daemon{Synchronous{}, &Central{}, CentralRandom{}, RandomSubset{P: 0.5}, &WeaklyFair{MaxAge: 4}} {
		buf := make([]int, 0, len(enabled))
		d.Select(buf, enabled, 0, rng) // warm internal state
		allocs := testing.AllocsPerRun(50, func() {
			d.Select(buf[:0], enabled, 1, rng)
		})
		if allocs > 0 {
			t.Errorf("%s: Select allocates %.1f per call with a warm buffer", d.Name(), allocs)
		}
	}
}

// TestStepAllocFree asserts the engine hot path itself stays
// allocation-free for a value-semantics state type.
func TestStepAllocFree(t *testing.T) {
	// The swap program never terminates, so every iteration steps.
	e := NewEngine(swapProgram(), Synchronous{}, 1)
	e.Prog.Locality = nil
	for i := 0; i < 4; i++ {
		e.Step()
	}
	allocs := testing.AllocsPerRun(100, func() { e.Step() })
	// roundSteps appends once per round; amortized it stays < 1.
	if allocs > 1 {
		t.Errorf("Step allocates %.1f per call in steady state", allocs)
	}
}
