// Package sim implements the computational model of paper §2.2: a
// distributed system of processes communicating through locally shared
// variables, executing finite ordered lists of guarded actions under a
// daemon (scheduler).
//
// The model, exactly as in the paper:
//
//   - The state of a process is the value of its variables; a
//     configuration is the vector of all process states.
//   - An action is enabled when its guard — a boolean expression over the
//     process's own and its neighbors' variables — holds.
//   - Priorities: "action A has higher priority than action B iff A
//     appears after B in the code" (§2.2); when several actions of a
//     process are enabled, the process executes the highest-priority
//     (i.e., last-listed) one. The paper's proofs depend on this: the
//     stabilization actions Stab1/Stab2 listed last are "the priority
//     actions".
//   - A step: the daemon selects a non-empty subset of the enabled
//     processes; every selected process atomically executes its priority
//     enabled action. All guards and statements of a step are evaluated
//     against the pre-step configuration (the engine double-buffers).
//   - Rounds (§2.2, after Dolev–Israeli–Moran): the first round of a
//     computation is the minimal prefix containing the activation or the
//     neutralization of every process enabled in the initial
//     configuration; later rounds recurse on the suffix.
//
// Programs are expressed over a user-chosen state type S with
// value-semantics cloning, so arbitrary algorithm compositions (e.g.,
// CC1 ∘ TC) are single Programs whose state embeds both layers.
//
// # Incremental enabled-set maintenance
//
// The paper's guards are *local*: a guard of process p reads only p and
// its neighbors in the committee hypergraph. A Program may declare this
// through the optional Locality capability, and the engine then keeps a
// per-process cache of the highest-priority enabled action, re-evaluating
// after each step only the processes whose declared neighborhood
// intersects the executed set (a dirty-set), instead of rescanning every
// guard of every process. External inputs (the environment's RequestIn/
// RequestOut predicates) are folded in through MarkDirty/MarkAllDirty.
// Without Locality the engine falls back to evaluating every guard fresh
// at each use, which is always correct; the two modes are observationally
// identical whenever the Locality declaration is sound (asserted by the
// cross-check tests in this package and in internal/core).
package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// Cloneable is implemented by program state types. Clone must return a
// deep copy: the engine hands each executing process a private copy of
// its own pre-step state to mutate.
type Cloneable[S any] interface {
	Clone() S
}

// Action is one guarded action of a local algorithm. Guard must be a pure
// function of the configuration (plus stable external inputs; see
// Engine.MarkDirty); Body reads the pre-step configuration cfg and
// mutates only *next (the executing process's own next state).
type Action[S Cloneable[S]] struct {
	Name  string
	Guard func(cfg []S, p int) bool
	Body  func(cfg []S, p int, next *S, rng *rand.Rand)
}

// Program is a distributed algorithm: one local algorithm replicated at n
// processes (the paper's algorithms are identical at all processes; a
// Program may still dispatch on p for e.g. identifiers or topology).
type Program[S Cloneable[S]] struct {
	// NumProcs is the number of processes.
	NumProcs int
	// Actions, in the paper's code order: index i+1 has higher priority
	// than index i (later in code = higher priority).
	Actions []Action[S]
	// Init returns an initial state for process p. For stabilization
	// experiments this is an arbitrary (random) state.
	Init func(p int, rng *rand.Rand) S

	// Locality, if non-nil, declares the guard/body read sets: every
	// guard and body of process p reads only the states of p and of the
	// processes in Locality(p). The relation must be static (the engine
	// snapshots it at construction) but need not be symmetric — the
	// engine inverts it. Declaring Locality switches Enabled() to
	// incremental dirty-set maintenance; an unsound declaration silently
	// produces wrong enabled sets, so keep the cross-check tests green.
	Locality func(p int) []int
}

// Exec records one action execution within a step.
type Exec struct {
	Proc   int
	Action int // index into Program.Actions
}

// Observer is called after every step with the step index (1-based), the
// new configuration, and the executions that formed the step. Observers
// must not retain cfg or execs without copying: both are engine-owned
// buffers reused by the next step.
type Observer[S Cloneable[S]] func(step int, cfg []S, execs []Exec)

// Engine runs a Program under a Daemon with deterministic, seedable
// randomness.
type Engine[S Cloneable[S]] struct {
	Prog   *Program[S]
	Daemon Daemon

	cfg  []S
	rng  *rand.Rand
	step int

	// Incremental enabled-set cache (see the package comment).
	act      []int   // act[p] = cached highest-priority enabled action of p, or -1
	affected [][]int // affected[q] = sorted processes whose guards read q; nil without Locality
	dirty    []int   // processes whose act entry is stale
	inDirty  []bool
	allDirty bool // full re-evaluation pending

	// Round accounting.
	round        int   // completed rounds
	roundStart   int   // step index at which the current round started
	roundPending []int // processes enabled at round start, not yet activated/neutralized
	roundSteps   []int // steps consumed by each completed round

	observers []Observer[S]

	// Reused scratch: steady-state Step() performs no allocation beyond
	// what Clone and the action bodies themselves do.
	enabledBuf []int
	actBuf     []int
	selBuf     []int
	selMark    []bool
	execsBuf   []Exec
	nextsBuf   []S
	pendBuf    []int
}

// NewEngine builds an engine and initializes the configuration from
// Program.Init using a rand.Rand seeded with seed.
func NewEngine[S Cloneable[S]](prog *Program[S], d Daemon, seed int64) *Engine[S] {
	n := prog.NumProcs
	e := &Engine[S]{
		Prog:       prog,
		Daemon:     d,
		rng:        rand.New(rand.NewSource(seed)),
		act:        make([]int, n),
		inDirty:    make([]bool, n),
		allDirty:   true,
		enabledBuf: make([]int, 0, n),
		actBuf:     make([]int, 0, n),
		selBuf:     make([]int, 0, n),
		selMark:    make([]bool, n),
		execsBuf:   make([]Exec, 0, n),
		nextsBuf:   make([]S, 0, n),
		pendBuf:    make([]int, 0, n),
		dirty:      make([]int, 0, n),
	}
	e.cfg = make([]S, n)
	for p := 0; p < n; p++ {
		e.cfg[p] = prog.Init(p, e.rng)
	}
	if prog.Locality != nil {
		e.affected = invertLocality(n, prog.Locality)
	}
	e.resetRound()
	return e
}

// invertLocality builds affected[q] = {p : q ∈ {p} ∪ Locality(p)}: the
// processes whose guards must be re-evaluated when q's state changes.
func invertLocality(n int, loc func(p int) []int) [][]int {
	aff := make([][]int, n)
	for p := 0; p < n; p++ {
		aff[p] = append(aff[p], p)
	}
	for p := 0; p < n; p++ {
		for _, q := range loc(p) {
			if q >= 0 && q < n && q != p {
				aff[q] = append(aff[q], p)
			}
		}
	}
	for q := range aff {
		sort.Ints(aff[q])
		w := 0
		for i, p := range aff[q] {
			if i == 0 || p != aff[q][w-1] {
				aff[q][w] = p
				w++
			}
		}
		aff[q] = aff[q][:w]
	}
	return aff
}

// Config returns the current configuration. Callers must not mutate it
// (use MutateProc / SetConfig, which keep the enabled-set cache honest).
func (e *Engine[S]) Config() []S { return e.cfg }

// SetConfig replaces the configuration (used by fault injectors and
// scripted replays). Round accounting restarts and the enabled-set cache
// is fully invalidated.
func (e *Engine[S]) SetConfig(cfg []S) {
	if len(cfg) != e.Prog.NumProcs {
		panic(fmt.Sprintf("sim: SetConfig with %d states for %d processes", len(cfg), e.Prog.NumProcs))
	}
	e.cfg = cfg
	e.allDirty = true
	e.resetRound()
}

// MutateProc applies fn to process p's state in place (fault injection).
func (e *Engine[S]) MutateProc(p int, fn func(s *S)) {
	fn(&e.cfg[p])
	e.allDirty = true
	e.resetRound()
}

// MarkDirty records that process p's enabledness may have changed for a
// reason invisible to the engine — typically an external input predicate
// (RequestIn/RequestOut) read by p's guards flipped between steps. The
// entry is re-evaluated before the next selection.
func (e *Engine[S]) MarkDirty(p int) {
	if p < 0 || p >= e.Prog.NumProcs {
		return
	}
	if !e.inDirty[p] {
		e.inDirty[p] = true
		e.dirty = append(e.dirty, p)
	}
}

// MarkAllDirty invalidates the whole enabled-set cache (external inputs
// changed in ways the caller cannot attribute to specific processes).
func (e *Engine[S]) MarkAllDirty() { e.allDirty = true }

// markStateChanged queues re-evaluation of every process whose declared
// read set contains p (only meaningful when Locality is declared).
func (e *Engine[S]) markStateChanged(p int) {
	for _, q := range e.affected[p] {
		if !e.inDirty[q] {
			e.inDirty[q] = true
			e.dirty = append(e.dirty, q)
		}
	}
}

// refresh brings the act cache in sync with the current configuration.
// Only meaningful when Locality is declared.
func (e *Engine[S]) refresh() {
	if e.allDirty {
		for p := range e.act {
			e.act[p] = enabledAction(e.Prog, e.cfg, p)
		}
		e.allDirty = false
		for _, p := range e.dirty {
			e.inDirty[p] = false
		}
		e.dirty = e.dirty[:0]
		return
	}
	for _, p := range e.dirty {
		e.act[p] = enabledAction(e.Prog, e.cfg, p)
		e.inDirty[p] = false
	}
	e.dirty = e.dirty[:0]
}

// RNG exposes the engine's deterministic randomness source (shared with
// daemons and action bodies).
func (e *Engine[S]) RNG() *rand.Rand { return e.rng }

// Steps returns the number of steps executed so far.
func (e *Engine[S]) Steps() int { return e.step }

// Rounds returns the number of completed rounds (paper §2.2).
func (e *Engine[S]) Rounds() int { return e.round }

// RoundSteps returns the number of steps in each completed round.
func (e *Engine[S]) RoundSteps() []int { return e.roundSteps }

// Observe registers an observer.
func (e *Engine[S]) Observe(o Observer[S]) { e.observers = append(e.observers, o) }

// EnabledAction returns the highest-priority enabled action index for p
// in the current configuration, or -1 if p is disabled. It always
// evaluates the guards directly (bypassing the cache).
func (e *Engine[S]) EnabledAction(p int) int {
	return enabledAction(e.Prog, e.cfg, p)
}

func enabledAction[S Cloneable[S]](prog *Program[S], cfg []S, p int) int {
	for a := len(prog.Actions) - 1; a >= 0; a-- {
		if prog.Actions[a].Guard(cfg, p) {
			return a
		}
	}
	return -1
}

// Enabled returns the processes enabled in the current configuration
// (reusing an internal buffer; copy to retain). With Locality declared
// only dirty processes are re-evaluated; otherwise every guard is
// evaluated fresh.
func (e *Engine[S]) Enabled() []int {
	if e.affected != nil {
		e.refresh()
	} else {
		for p := range e.act {
			e.act[p] = enabledAction(e.Prog, e.cfg, p)
		}
	}
	e.enabledBuf = e.enabledBuf[:0]
	e.actBuf = e.actBuf[:0]
	for p, a := range e.act {
		if a >= 0 {
			e.enabledBuf = append(e.enabledBuf, p)
			e.actBuf = append(e.actBuf, a)
		}
	}
	return e.enabledBuf
}

// Terminal reports whether no process is enabled.
func (e *Engine[S]) Terminal() bool { return len(e.Enabled()) == 0 }

// Step executes one step: daemon selection + simultaneous execution.
// It returns the executions performed, or nil if the configuration is
// terminal. The returned slice is an engine-owned buffer reused by the
// next Step call; copy to retain. Panics if the daemon returns an empty
// or invalid selection.
func (e *Engine[S]) Step() []Exec {
	enabled := e.Enabled()
	if len(enabled) == 0 {
		return nil
	}
	sel := e.Daemon.Select(e.selBuf[:0], enabled, e.step, e.rng)
	e.selBuf = sel
	if len(sel) == 0 {
		panic("sim: daemon selected no process from a non-empty enabled set")
	}
	// Compute all next-states against the pre-step configuration.
	execs := e.execsBuf[:0]
	nexts := e.nextsBuf[:0]
	for _, p := range sel {
		if p < 0 || p >= e.Prog.NumProcs || e.act[p] < 0 {
			panic(fmt.Sprintf("sim: daemon selected disabled process %d", p))
		}
		if e.selMark[p] {
			panic(fmt.Sprintf("sim: daemon selected process %d twice", p))
		}
		e.selMark[p] = true
		a := e.act[p]
		nexts = append(nexts, e.cfg[p].Clone())
		e.Prog.Actions[a].Body(e.cfg, p, &nexts[len(nexts)-1], e.rng)
		execs = append(execs, Exec{Proc: p, Action: a})
	}
	// Commit.
	for i, ex := range execs {
		e.cfg[ex.Proc] = nexts[i]
	}
	e.execsBuf = execs
	e.nextsBuf = nexts
	e.step++
	if e.affected != nil && !e.allDirty {
		for _, ex := range execs {
			e.markStateChanged(ex.Proc)
		}
	}

	// Round accounting: remove activated or neutralized processes
	// (selMark doubles as the executed set until cleared below).
	if len(e.roundPending) > 0 {
		if e.affected != nil {
			e.refresh()
		}
		still := e.pendBuf[:0]
		for _, p := range e.roundPending {
			if e.selMark[p] {
				continue // activated
			}
			if e.affected != nil {
				if e.act[p] < 0 {
					continue // neutralized
				}
			} else if enabledAction(e.Prog, e.cfg, p) < 0 {
				continue // neutralized
			}
			still = append(still, p)
		}
		e.pendBuf = e.roundPending[:0]
		e.roundPending = still
	}
	for _, p := range sel {
		e.selMark[p] = false
	}
	if len(e.roundPending) == 0 {
		e.round++
		e.roundSteps = append(e.roundSteps, e.step-e.roundStart)
		e.roundStart = e.step
		e.fillRoundPending()
	}

	for _, o := range e.observers {
		o(e.step, e.cfg, execs)
	}
	return execs
}

// Run executes at most maxSteps steps, stopping early at a terminal
// configuration. It returns the number of steps executed.
func (e *Engine[S]) Run(maxSteps int) int {
	start := e.step
	for e.step-start < maxSteps {
		if e.Step() == nil {
			break
		}
	}
	return e.step - start
}

// RunUntil executes steps until pred(cfg) holds (checked before each
// step), the configuration is terminal, or maxSteps steps have been
// taken. It reports whether pred held.
func (e *Engine[S]) RunUntil(maxSteps int, pred func(cfg []S) bool) bool {
	start := e.step
	for {
		if pred(e.cfg) {
			return true
		}
		if e.step-start >= maxSteps {
			return false
		}
		if e.Step() == nil {
			return pred(e.cfg)
		}
	}
}

// RunRounds executes whole rounds until the given number of additional
// rounds completed, a terminal configuration, or maxSteps steps.
// It returns the number of rounds completed within the call.
func (e *Engine[S]) RunRounds(rounds, maxSteps int) int {
	startRound, startStep := e.round, e.step
	for e.round-startRound < rounds && e.step-startStep < maxSteps {
		if e.Step() == nil {
			break
		}
	}
	return e.round - startRound
}

func (e *Engine[S]) resetRound() {
	e.roundStart = e.step
	e.fillRoundPending()
}

func (e *Engine[S]) fillRoundPending() {
	e.roundPending = e.roundPending[:0]
	if e.affected != nil {
		e.refresh()
		for p, a := range e.act {
			if a >= 0 {
				e.roundPending = append(e.roundPending, p)
			}
		}
		return
	}
	for p := 0; p < e.Prog.NumProcs; p++ {
		if enabledAction(e.Prog, e.cfg, p) >= 0 {
			e.roundPending = append(e.roundPending, p)
		}
	}
}
