// Package sim implements the computational model of paper §2.2: a
// distributed system of processes communicating through locally shared
// variables, executing finite ordered lists of guarded actions under a
// daemon (scheduler).
//
// The model, exactly as in the paper:
//
//   - The state of a process is the value of its variables; a
//     configuration is the vector of all process states.
//   - An action is enabled when its guard — a boolean expression over the
//     process's own and its neighbors' variables — holds.
//   - Priorities: "action A has higher priority than action B iff A
//     appears after B in the code" (§2.2); when several actions of a
//     process are enabled, the process executes the highest-priority
//     (i.e., last-listed) one. The paper's proofs depend on this: the
//     stabilization actions Stab1/Stab2 listed last are "the priority
//     actions".
//   - A step: the daemon selects a non-empty subset of the enabled
//     processes; every selected process atomically executes its priority
//     enabled action. All guards and statements of a step are evaluated
//     against the pre-step configuration (the engine double-buffers).
//   - Rounds (§2.2, after Dolev–Israeli–Moran): the first round of a
//     computation is the minimal prefix containing the activation or the
//     neutralization of every process enabled in the initial
//     configuration; later rounds recurse on the suffix.
//
// Programs are expressed over a user-chosen state type S with
// value-semantics cloning, so arbitrary algorithm compositions (e.g.,
// CC1 ∘ TC) are single Programs whose state embeds both layers.
package sim

import (
	"fmt"
	"math/rand"
)

// Cloneable is implemented by program state types. Clone must return a
// deep copy: the engine hands each executing process a private copy of
// its own pre-step state to mutate.
type Cloneable[S any] interface {
	Clone() S
}

// Action is one guarded action of a local algorithm. Guard must be a pure
// function of the configuration; Body reads the pre-step configuration
// cfg and mutates only *next (the executing process's own next state).
type Action[S Cloneable[S]] struct {
	Name  string
	Guard func(cfg []S, p int) bool
	Body  func(cfg []S, p int, next *S, rng *rand.Rand)
}

// Program is a distributed algorithm: one local algorithm replicated at n
// processes (the paper's algorithms are identical at all processes; a
// Program may still dispatch on p for e.g. identifiers or topology).
type Program[S Cloneable[S]] struct {
	// NumProcs is the number of processes.
	NumProcs int
	// Actions, in the paper's code order: index i+1 has higher priority
	// than index i (later in code = higher priority).
	Actions []Action[S]
	// Init returns an initial state for process p. For stabilization
	// experiments this is an arbitrary (random) state.
	Init func(p int, rng *rand.Rand) S
}

// Exec records one action execution within a step.
type Exec struct {
	Proc   int
	Action int // index into Program.Actions
}

// Observer is called after every step with the step index (1-based), the
// new configuration, and the executions that formed the step. Observers
// must not retain cfg without copying.
type Observer[S Cloneable[S]] func(step int, cfg []S, execs []Exec)

// Engine runs a Program under a Daemon with deterministic, seedable
// randomness.
type Engine[S Cloneable[S]] struct {
	Prog   *Program[S]
	Daemon Daemon

	cfg  []S
	rng  *rand.Rand
	step int

	// Round accounting.
	round        int   // completed rounds
	roundStart   int   // step index at which the current round started
	roundPending []int // processes enabled at round start, not yet activated/neutralized
	roundSteps   []int // steps consumed by each completed round

	observers []Observer[S]

	// scratch
	enabledBuf []int
	actBuf     []int
}

// NewEngine builds an engine and initializes the configuration from
// Program.Init using a rand.Rand seeded with seed.
func NewEngine[S Cloneable[S]](prog *Program[S], d Daemon, seed int64) *Engine[S] {
	e := &Engine[S]{
		Prog:   prog,
		Daemon: d,
		rng:    rand.New(rand.NewSource(seed)),
	}
	e.cfg = make([]S, prog.NumProcs)
	for p := 0; p < prog.NumProcs; p++ {
		e.cfg[p] = prog.Init(p, e.rng)
	}
	e.resetRound()
	return e
}

// Config returns the current configuration. Callers must not mutate it.
func (e *Engine[S]) Config() []S { return e.cfg }

// SetConfig replaces the configuration (used by fault injectors and
// scripted replays). Round accounting restarts.
func (e *Engine[S]) SetConfig(cfg []S) {
	if len(cfg) != e.Prog.NumProcs {
		panic(fmt.Sprintf("sim: SetConfig with %d states for %d processes", len(cfg), e.Prog.NumProcs))
	}
	e.cfg = cfg
	e.resetRound()
}

// MutateProc applies fn to process p's state in place (fault injection).
func (e *Engine[S]) MutateProc(p int, fn func(s *S)) {
	fn(&e.cfg[p])
	e.resetRound()
}

// RNG exposes the engine's deterministic randomness source (shared with
// daemons and action bodies).
func (e *Engine[S]) RNG() *rand.Rand { return e.rng }

// Steps returns the number of steps executed so far.
func (e *Engine[S]) Steps() int { return e.step }

// Rounds returns the number of completed rounds (paper §2.2).
func (e *Engine[S]) Rounds() int { return e.round }

// RoundSteps returns the number of steps in each completed round.
func (e *Engine[S]) RoundSteps() []int { return e.roundSteps }

// Observe registers an observer.
func (e *Engine[S]) Observe(o Observer[S]) { e.observers = append(e.observers, o) }

// EnabledAction returns the highest-priority enabled action index for p
// in the current configuration, or -1 if p is disabled.
func (e *Engine[S]) EnabledAction(p int) int {
	return enabledAction(e.Prog, e.cfg, p)
}

func enabledAction[S Cloneable[S]](prog *Program[S], cfg []S, p int) int {
	for a := len(prog.Actions) - 1; a >= 0; a-- {
		if prog.Actions[a].Guard(cfg, p) {
			return a
		}
	}
	return -1
}

// Enabled returns the processes enabled in the current configuration
// (reusing an internal buffer; copy to retain).
func (e *Engine[S]) Enabled() []int {
	e.enabledBuf = e.enabledBuf[:0]
	e.actBuf = e.actBuf[:0]
	for p := 0; p < e.Prog.NumProcs; p++ {
		if a := e.EnabledAction(p); a >= 0 {
			e.enabledBuf = append(e.enabledBuf, p)
			e.actBuf = append(e.actBuf, a)
		}
	}
	return e.enabledBuf
}

// Terminal reports whether no process is enabled.
func (e *Engine[S]) Terminal() bool { return len(e.Enabled()) == 0 }

// Step executes one step: daemon selection + simultaneous execution.
// It returns the executions performed, or nil if the configuration is
// terminal. Panics if the daemon returns an empty or invalid selection.
func (e *Engine[S]) Step() []Exec {
	enabled := e.Enabled()
	if len(enabled) == 0 {
		return nil
	}
	acts := e.actBuf
	sel := e.Daemon.Select(enabled, e.step, e.rng)
	if len(sel) == 0 {
		panic("sim: daemon selected no process from a non-empty enabled set")
	}
	inEnabled := func(p int) int {
		for i, q := range enabled {
			if q == p {
				return i
			}
		}
		return -1
	}
	// Compute all next-states against the pre-step configuration.
	execs := make([]Exec, 0, len(sel))
	nexts := make([]S, 0, len(sel))
	seen := make(map[int]bool, len(sel))
	for _, p := range sel {
		i := inEnabled(p)
		if i < 0 {
			panic(fmt.Sprintf("sim: daemon selected disabled process %d", p))
		}
		if seen[p] {
			panic(fmt.Sprintf("sim: daemon selected process %d twice", p))
		}
		seen[p] = true
		a := acts[i]
		next := e.cfg[p].Clone()
		e.Prog.Actions[a].Body(e.cfg, p, &next, e.rng)
		execs = append(execs, Exec{Proc: p, Action: a})
		nexts = append(nexts, next)
	}
	// Commit.
	for i, ex := range execs {
		e.cfg[ex.Proc] = nexts[i]
	}
	e.step++

	// Round accounting: remove activated or neutralized processes.
	if len(e.roundPending) > 0 {
		executed := seen
		var still []int
		for _, p := range e.roundPending {
			if executed[p] {
				continue // activated
			}
			if enabledAction(e.Prog, e.cfg, p) < 0 {
				continue // neutralized
			}
			still = append(still, p)
		}
		e.roundPending = still
	}
	if len(e.roundPending) == 0 {
		e.round++
		e.roundSteps = append(e.roundSteps, e.step-e.roundStart)
		e.roundStart = e.step
		e.fillRoundPending()
	}

	for _, o := range e.observers {
		o(e.step, e.cfg, execs)
	}
	return execs
}

// Run executes at most maxSteps steps, stopping early at a terminal
// configuration. It returns the number of steps executed.
func (e *Engine[S]) Run(maxSteps int) int {
	start := e.step
	for e.step-start < maxSteps {
		if e.Step() == nil {
			break
		}
	}
	return e.step - start
}

// RunUntil executes steps until pred(cfg) holds (checked before each
// step), the configuration is terminal, or maxSteps steps have been
// taken. It reports whether pred held.
func (e *Engine[S]) RunUntil(maxSteps int, pred func(cfg []S) bool) bool {
	start := e.step
	for {
		if pred(e.cfg) {
			return true
		}
		if e.step-start >= maxSteps {
			return false
		}
		if e.Step() == nil {
			return pred(e.cfg)
		}
	}
}

// RunRounds executes whole rounds until the given number of additional
// rounds completed, a terminal configuration, or maxSteps steps.
// It returns the number of rounds completed within the call.
func (e *Engine[S]) RunRounds(rounds, maxSteps int) int {
	startRound, startStep := e.round, e.step
	for e.round-startRound < rounds && e.step-startStep < maxSteps {
		if e.Step() == nil {
			break
		}
	}
	return e.round - startRound
}

func (e *Engine[S]) resetRound() {
	e.roundStart = e.step
	e.fillRoundPending()
}

func (e *Engine[S]) fillRoundPending() {
	e.roundPending = e.roundPending[:0]
	for p := 0; p < e.Prog.NumProcs; p++ {
		if enabledAction(e.Prog, e.cfg, p) >= 0 {
			e.roundPending = append(e.roundPending, p)
		}
	}
}
