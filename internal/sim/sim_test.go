package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// tstate is a trivial one-variable process state for engine tests.
type tstate struct{ X int }

func (s tstate) Clone() tstate { return s }

// maxProgram: line topology 0-1-...-n-1; each process raises X to the max
// of its neighborhood. Terminates when all X equal the global max.
func maxProgram(n int) *Program[tstate] {
	nbrs := func(p int) []int {
		var out []int
		if p > 0 {
			out = append(out, p-1)
		}
		if p < n-1 {
			out = append(out, p+1)
		}
		return out
	}
	localMax := func(cfg []tstate, p int) int {
		m := cfg[p].X
		for _, q := range nbrs(p) {
			if cfg[q].X > m {
				m = cfg[q].X
			}
		}
		return m
	}
	return &Program[tstate]{
		NumProcs: n,
		Actions: []Action[tstate]{
			{
				Name:  "raise",
				Guard: func(cfg []tstate, p int) bool { return localMax(cfg, p) > cfg[p].X },
				Body: func(cfg []tstate, p int, next *tstate, _ *rand.Rand) {
					next.X = localMax(cfg, p)
				},
			},
		},
		Init: func(p int, _ *rand.Rand) tstate { return tstate{X: p} },
	}
}

func TestEngineTerminatesMaxPropagation(t *testing.T) {
	n := 9
	e := NewEngine(maxProgram(n), Synchronous{}, 1)
	steps := e.Run(1000)
	if !e.Terminal() {
		t.Fatal("engine should reach terminal configuration")
	}
	// Under the synchronous daemon the max at n-1 propagates one hop per
	// step: exactly n-1 steps.
	if steps != n-1 {
		t.Fatalf("synchronous steps = %d, want %d", steps, n-1)
	}
	for p := 0; p < n; p++ {
		if e.Config()[p].X != n-1 {
			t.Fatalf("proc %d has X=%d, want %d", p, e.Config()[p].X, n-1)
		}
	}
}

func TestSynchronousRoundsEqualSteps(t *testing.T) {
	n := 7
	e := NewEngine(maxProgram(n), Synchronous{}, 1)
	e.Run(1000)
	// Under the synchronous daemon every enabled process executes each
	// step, so every step is a round.
	if e.Rounds() != e.Steps() {
		t.Fatalf("rounds=%d steps=%d; must be equal under synchronous daemon", e.Rounds(), e.Steps())
	}
	for _, rs := range e.RoundSteps() {
		if rs != 1 {
			t.Fatalf("round used %d steps under synchronous daemon", rs)
		}
	}
}

func TestCentralDaemonStillTerminates(t *testing.T) {
	n := 6
	e := NewEngine(maxProgram(n), &Central{}, 1)
	e.Run(10000)
	if !e.Terminal() {
		t.Fatal("central daemon run should terminate")
	}
	// Rounds <= steps, and at least 1.
	if e.Rounds() < 1 || e.Rounds() > e.Steps() {
		t.Fatalf("implausible rounds=%d steps=%d", e.Rounds(), e.Steps())
	}
}

// swapProgram exercises simultaneous (pre-step snapshot) semantics: two
// processes always copy each other's value; a synchronous step must swap.
func swapProgram() *Program[tstate] {
	other := func(p int) int { return 1 - p }
	return &Program[tstate]{
		NumProcs: 2,
		Actions: []Action[tstate]{
			{
				Name:  "copy",
				Guard: func(cfg []tstate, p int) bool { return cfg[p].X != cfg[other(p)].X },
				Body: func(cfg []tstate, p int, next *tstate, _ *rand.Rand) {
					next.X = cfg[other(p)].X
				},
			},
		},
		Init: func(p int, _ *rand.Rand) tstate { return tstate{X: p * 10} },
	}
}

func TestSimultaneousSnapshotSemantics(t *testing.T) {
	e := NewEngine(swapProgram(), Synchronous{}, 1)
	execs := e.Step()
	if len(execs) != 2 {
		t.Fatalf("want both processes executed, got %v", execs)
	}
	// Both read the pre-step configuration: values swap (0,10) -> (10,0).
	if e.Config()[0].X != 10 || e.Config()[1].X != 0 {
		t.Fatalf("swap failed: %+v", e.Config())
	}
	// And swap forever: never terminal.
	e.Run(10)
	if e.Terminal() {
		t.Fatal("swap program must not terminate under synchronous daemon")
	}
}

// priorityProgram checks "later in code = higher priority" (§2.2).
func priorityProgram() *Program[tstate] {
	return &Program[tstate]{
		NumProcs: 1,
		Actions: []Action[tstate]{
			{
				Name:  "low",
				Guard: func(cfg []tstate, p int) bool { return cfg[p].X == 0 },
				Body:  func(cfg []tstate, p int, next *tstate, _ *rand.Rand) { next.X = 1 },
			},
			{
				Name:  "high",
				Guard: func(cfg []tstate, p int) bool { return cfg[p].X == 0 },
				Body:  func(cfg []tstate, p int, next *tstate, _ *rand.Rand) { next.X = 2 },
			},
		},
		Init: func(p int, _ *rand.Rand) tstate { return tstate{X: 0} },
	}
}

func TestActionPriorityLastListedWins(t *testing.T) {
	e := NewEngine(priorityProgram(), Synchronous{}, 1)
	if a := e.EnabledAction(0); a != 1 {
		t.Fatalf("EnabledAction = %d, want 1 (the later action)", a)
	}
	execs := e.Step()
	if execs[0].Action != 1 {
		t.Fatalf("executed action %d, want 1", execs[0].Action)
	}
	if e.Config()[0].X != 2 {
		t.Fatalf("X=%d, want 2 (high-priority body)", e.Config()[0].X)
	}
}

// neutralizeProgram: proc 0 enabled until it fires; proc 1's guard
// depends on proc 0's value and is neutralized when 0 fires.
func neutralizeProgram() *Program[tstate] {
	return &Program[tstate]{
		NumProcs: 2,
		Actions: []Action[tstate]{
			{
				Name: "a",
				Guard: func(cfg []tstate, p int) bool {
					if p == 0 {
						return cfg[0].X == 0
					}
					return cfg[0].X == 0 // proc 1 enabled only while proc 0 hasn't moved
				},
				Body: func(cfg []tstate, p int, next *tstate, _ *rand.Rand) { next.X = 1 },
			},
		},
		Init: func(p int, _ *rand.Rand) tstate { return tstate{} },
	}
}

func TestRoundCompletesViaNeutralization(t *testing.T) {
	// Central daemon picks proc 0 first (round-robin from -? Central.last=0
	// selects >0 first). Use scripted daemon to force proc 0 only.
	d := &Scripted{Schedule: [][]int{{0}}}
	e := NewEngine(neutralizeProgram(), d, 1)
	e.Step()
	// Both processes were enabled initially; proc 0 activated, proc 1
	// neutralized => the round completes after one step.
	if e.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1 (neutralization ends the round)", e.Rounds())
	}
	if !e.Terminal() {
		t.Fatal("should be terminal")
	}
}

func TestRunUntil(t *testing.T) {
	n := 8
	e := NewEngine(maxProgram(n), Synchronous{}, 1)
	ok := e.RunUntil(100, func(cfg []tstate) bool { return cfg[0].X == n-1 })
	if !ok {
		t.Fatal("RunUntil should observe the predicate")
	}
	// Predicate already true: no steps taken.
	before := e.Steps()
	e.RunUntil(100, func(cfg []tstate) bool { return true })
	if e.Steps() != before {
		t.Fatal("RunUntil must not step when predicate already holds")
	}
	// Unsatisfiable predicate on terminal config returns false.
	e.Run(100)
	if e.RunUntil(100, func(cfg []tstate) bool { return false }) {
		t.Fatal("unsatisfiable predicate should return false")
	}
}

func TestRunRounds(t *testing.T) {
	n := 6
	e := NewEngine(maxProgram(n), &WeaklyFair{MaxAge: 4}, 5)
	got := e.RunRounds(3, 100000)
	if got != 3 && !e.Terminal() {
		t.Fatalf("RunRounds completed %d rounds, want 3 (or terminal)", got)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() ([]tstate, int) {
		e := NewEngine(maxProgram(10), &WeaklyFair{}, 42)
		e.Run(500)
		cfg := append([]tstate(nil), e.Config()...)
		return cfg, e.Steps()
	}
	c1, s1 := run()
	c2, s2 := run()
	if s1 != s2 || !reflect.DeepEqual(c1, c2) {
		t.Fatal("same seed must give identical runs")
	}
}

func TestMutateProcAndSetConfig(t *testing.T) {
	e := NewEngine(maxProgram(4), Synchronous{}, 1)
	e.Run(100)
	if !e.Terminal() {
		t.Fatal("should be terminal")
	}
	// Corrupt a process: engine must become enabled again (stabilization).
	e.MutateProc(0, func(s *tstate) { s.X = -5 })
	if e.Terminal() {
		t.Fatal("corrupted process should re-enable the system")
	}
	e.Run(100)
	if e.Config()[0].X != 3 {
		t.Fatalf("recovery failed: %+v", e.Config())
	}

	cfg := []tstate{{X: 9}, {X: 9}, {X: 9}, {X: 9}}
	e.SetConfig(cfg)
	if !e.Terminal() {
		t.Fatal("uniform config should be terminal")
	}
}

func TestDaemonSelectionValidation(t *testing.T) {
	bad := Adversary{Fn: func(enabled []int, _ int, _ *rand.Rand) []int { return nil }}
	e := NewEngine(maxProgram(3), bad, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("empty daemon selection must panic")
		}
	}()
	e.Step()
}

func TestDaemonSelectingDisabledPanics(t *testing.T) {
	bad := Adversary{Fn: func(enabled []int, _ int, _ *rand.Rand) []int { return []int{99} }}
	e := NewEngine(maxProgram(3), bad, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("selecting a disabled process must panic")
		}
	}()
	e.Step()
}

func TestScriptedDaemon(t *testing.T) {
	d := &Scripted{Schedule: [][]int{{2}, {1}, {0, 1}}}
	e := NewEngine(maxProgram(4), d, 1)
	ex := e.Step()
	if len(ex) != 1 || ex[0].Proc != 2 {
		t.Fatalf("scripted step 1 executed %v", ex)
	}
	ex = e.Step()
	if len(ex) != 1 || ex[0].Proc != 1 {
		t.Fatalf("scripted step 2 executed %v", ex)
	}
	if d.Exhausted() {
		t.Fatal("script not yet exhausted")
	}
	e.Step()
	if !d.Exhausted() {
		t.Fatal("script should be exhausted")
	}
	// Fallback (synchronous) finishes the run.
	e.Run(100)
	if !e.Terminal() {
		t.Fatal("fallback should finish")
	}
}

func TestCentralDaemonRoundRobin(t *testing.T) {
	d := &Central{}
	rng := rand.New(rand.NewSource(1))
	got := []int{}
	for i := 0; i < 6; i++ {
		sel := d.Select(nil, []int{0, 1, 2}, i, rng)
		if len(sel) != 1 {
			t.Fatalf("central daemon must select exactly one, got %v", sel)
		}
		got = append(got, sel[0])
	}
	want := []int{1, 2, 0, 1, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round robin = %v, want %v", got, want)
	}
}

func TestWeaklyFairForcesStarvedProcess(t *testing.T) {
	d := &WeaklyFair{P: 0.0001, MaxAge: 5} // nearly never random-selects
	rng := rand.New(rand.NewSource(1))
	enabled := []int{0, 1, 2}
	seen := map[int]bool{}
	for i := 0; i < 40; i++ {
		for _, p := range d.Select(nil, enabled, i, rng) {
			seen[p] = true
		}
	}
	for _, p := range enabled {
		if !seen[p] {
			t.Fatalf("weakly fair daemon starved process %d", p)
		}
	}
}

func TestDaemonSubsetProperty(t *testing.T) {
	daemons := []Daemon{Synchronous{}, &Central{}, CentralRandom{}, RandomSubset{P: 0.3}, &WeaklyFair{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		enabled := rng.Perm(12)[:n]
		for _, d := range daemons {
			sel := d.Select(nil, enabled, 0, rng)
			if len(sel) == 0 {
				return false
			}
			in := map[int]bool{}
			for _, p := range enabled {
				in[p] = true
			}
			for _, p := range sel {
				if !in[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestObserverSeesEveryStep(t *testing.T) {
	e := NewEngine(maxProgram(5), Synchronous{}, 1)
	var steps []int
	var execCount int
	e.Observe(func(step int, cfg []tstate, execs []Exec) {
		steps = append(steps, step)
		execCount += len(execs)
	})
	e.Run(100)
	if len(steps) != e.Steps() {
		t.Fatalf("observer saw %d steps, engine ran %d", len(steps), e.Steps())
	}
	if execCount == 0 {
		t.Fatal("observer saw no executions")
	}
	for i, s := range steps {
		if s != i+1 {
			t.Fatalf("step indices not sequential: %v", steps)
		}
	}
}
