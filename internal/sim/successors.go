package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// This file is the nondeterministic-successor API used by the bounded
// exhaustive model checker (internal/explore). The Engine executes *one*
// computation — a single resolution of the daemon's choices; Successors
// instead enumerates *every* configuration reachable in one step, i.e.
// one branch per daemon selection the chosen daemon class allows. All
// guards and bodies are evaluated against the pre-step configuration,
// exactly as in Engine.Step, so a transition enumerated here is a
// transition some Engine run could take.

// SelectionMode is the class of daemon choices to branch over.
type SelectionMode int

const (
	// SelectCentral branches over every singleton selection — the central
	// daemon's choices (paper §2.2: exactly one enabled process per step).
	SelectCentral SelectionMode = iota
	// SelectSynchronous takes the single selection containing every
	// enabled process — the synchronous daemon's only choice.
	SelectSynchronous
	// SelectAllSubsets branches over every non-empty subset of the
	// enabled processes — the fully general distributed daemon. Every
	// concrete Daemon's possible choices (including WeaklyFair's and
	// RandomSubset's) are a subset of these branches, so a property that
	// holds on all SelectAllSubsets paths holds under every daemon.
	SelectAllSubsets
)

func (m SelectionMode) String() string {
	switch m {
	case SelectCentral:
		return "central"
	case SelectSynchronous:
		return "synchronous"
	case SelectAllSubsets:
		return "all-subsets"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// EnabledOf evaluates every guard of prog against cfg and appends the
// enabled processes to dst (ascending), returning the result. Unlike
// Engine.Enabled it needs no engine state, so explorers can call it on
// decoded configurations.
func EnabledOf[S Cloneable[S]](prog *Program[S], cfg []S, dst []int) []int {
	for p := 0; p < prog.NumProcs; p++ {
		if enabledAction(prog, cfg, p) >= 0 {
			dst = append(dst, p)
		}
	}
	return dst
}

// Apply executes the selection sel (each process running its
// highest-priority enabled action) against cfg and writes the successor
// into next, which must have length len(cfg). cfg is not mutated; next
// and cfg must not alias. rng feeds nondeterministic action bodies — an
// explorer must pass a deterministically re-seeded source (or use
// deterministic bodies) so that Apply is a pure function of (cfg, sel),
// otherwise state-graph memoization is unsound. Panics if a selected
// process is disabled.
func Apply[S Cloneable[S]](prog *Program[S], cfg, next []S, sel []int, rng *rand.Rand) {
	copy(next, cfg)
	for _, p := range sel {
		a := enabledAction(prog, cfg, p)
		if a < 0 {
			panic(fmt.Sprintf("sim: Apply selected disabled process %d", p))
		}
		next[p] = cfg[p].Clone()
		prog.Actions[a].Body(cfg, p, &next[p], rng)
	}
}

// Successors enumerates the one-step successors of cfg under mode,
// calling visit with each daemon selection and the resulting
// configuration. Both arguments are buffers owned by Successors and
// reused across branches: visit must copy (or encode) what it retains.
// visit returning false stops the enumeration early.
//
// It returns the number of enabled processes and the number of branches
// visited. A terminal configuration (no process enabled) yields zero
// branches. maxBranches caps the enumeration (0 = unlimited): with
// SelectAllSubsets the branch count is 2^|enabled|−1, so explorers
// should bound it and treat a hit as truncation, not proof.
func Successors[S Cloneable[S]](prog *Program[S], cfg []S, mode SelectionMode, rng *rand.Rand, maxBranches int, visit func(sel []int, next []S) bool) (enabled, branches int) {
	return SuccessorsBuf(prog, cfg, mode, rng, maxBranches, nil, visit)
}

// SuccScratch holds the reusable buffers of SuccessorsBuf. A zero value
// is ready to use; the buffers grow on demand and are overwritten by
// every call, so one scratch must not be shared across goroutines.
type SuccScratch[S any] struct {
	en     []int
	acts   []int
	next   []S
	sel    []int
	selIdx []int
}

// SuccessorsBuf is Successors with caller-owned scratch and cached
// enabled actions, so explorers expanding millions of configurations
// stay allocation-free and evaluate each process's guards exactly once
// per configuration: every branch reuses the actions found by the
// initial enabled-set pass instead of re-resolving them per selected
// process (with SelectAllSubsets that re-resolution is Σ|sel| =
// k·2^(k-1) guard evaluations per configuration — the dominant cost of
// the PR 2 engine on that mode). sc may be nil (per-call buffers, as
// Successors).
func SuccessorsBuf[S Cloneable[S]](prog *Program[S], cfg []S, mode SelectionMode, rng *rand.Rand, maxBranches int, sc *SuccScratch[S], visit func(sel []int, next []S) bool) (enabled, branches int) {
	if sc == nil {
		sc = &SuccScratch[S]{}
	}
	en, acts := sc.en[:0], sc.acts[:0]
	for p := 0; p < prog.NumProcs; p++ {
		if a := enabledAction(prog, cfg, p); a >= 0 {
			en = append(en, p)
			acts = append(acts, a)
		}
	}
	sc.en, sc.acts = en, acts
	if len(en) == 0 {
		return 0, 0
	}
	if cap(sc.next) < len(cfg) {
		sc.next = make([]S, len(cfg))
	}
	next := sc.next[:len(cfg)]
	// emit applies the selection en[idx] for idx in selIdx using the
	// cached actions, then visits.
	emit := func(sel, selIdx []int) bool {
		if maxBranches > 0 && branches >= maxBranches {
			return false
		}
		copy(next, cfg)
		for _, i := range selIdx {
			p := en[i]
			next[p] = cfg[p].Clone()
			prog.Actions[acts[i]].Body(cfg, p, &next[p], rng)
		}
		branches++
		return visit(sel, next)
	}
	if cap(sc.sel) < len(en) {
		sc.sel = make([]int, 0, len(en))
		sc.selIdx = make([]int, 0, len(en))
	}
	switch mode {
	case SelectCentral:
		sel, selIdx := sc.sel[:1], sc.selIdx[:1]
		for i, p := range en {
			sel[0], selIdx[0] = p, i
			if !emit(sel, selIdx) {
				return len(en), branches
			}
		}
	case SelectSynchronous:
		selIdx := sc.selIdx[:0]
		for i := range en {
			selIdx = append(selIdx, i)
		}
		emit(en, selIdx)
	case SelectAllSubsets:
		k := len(en)
		if maxBranches <= 0 && k > 30 {
			panic(fmt.Sprintf("sim: unbounded SelectAllSubsets over %d enabled processes (2^%d branches); pass maxBranches to truncate", k, k))
		}
		// With maxBranches set the enumeration stops at the cap, so large
		// enabled sets truncate instead of exploding; masks beyond 63 bits
		// are unreachable before any realistic cap.
		last := ^uint64(0)
		if k < 64 {
			last = uint64(1)<<k - 1
		}
		// Incremental enumeration in mask-increment order: consecutive
		// masks differ in the bits a binary counter flips, amortized two
		// per increment, so next is maintained by toggling those
		// processes (apply on 1-bits, restore cfg on 0-bits) instead of
		// rebuilding the whole configuration per subset — Σ|sel| body
		// applications become O(2^k). Same masks, same order, same
		// successors as the naive loop.
		copy(next, cfg)
		prev := uint64(0)
		sel := sc.sel[:0]
		for mask := uint64(1); ; mask++ {
			if maxBranches > 0 && branches >= maxBranches {
				return len(en), branches
			}
			for diff := (mask ^ prev) & last; diff != 0; diff &= diff - 1 {
				i := bits.TrailingZeros64(diff)
				p := en[i]
				if mask&(uint64(1)<<i) != 0 {
					next[p] = cfg[p].Clone()
					prog.Actions[acts[i]].Body(cfg, p, &next[p], rng)
				} else {
					next[p] = cfg[p]
				}
			}
			prev = mask
			sel = sel[:0]
			for i := 0; i < k && i < 64; i++ {
				if mask&(uint64(1)<<i) != 0 {
					sel = append(sel, en[i])
				}
			}
			branches++
			if !visit(sel, next) {
				return len(en), branches
			}
			if mask == last {
				break
			}
		}
	default:
		panic(fmt.Sprintf("sim: unknown SelectionMode %d", int(mode)))
	}
	return len(en), branches
}
