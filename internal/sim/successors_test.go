package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// counter is a trivial cloneable state for successor tests.
type counter struct{ V int }

func (c counter) Clone() counter { return c }

// incProgram: every process with V < limit is enabled and increments V.
func incProgram(n, limit int) *sim.Program[counter] {
	return &sim.Program[counter]{
		NumProcs: n,
		Actions: []sim.Action[counter]{{
			Name:  "inc",
			Guard: func(cfg []counter, p int) bool { return cfg[p].V < limit },
			Body:  func(cfg []counter, p int, next *counter, _ *rand.Rand) { next.V++ },
		}},
		Init: func(p int, _ *rand.Rand) counter { return counter{} },
	}
}

func collect(t *testing.T, prog *sim.Program[counter], cfg []counter, mode sim.SelectionMode, maxBranches int) (sels [][]int, nexts [][]counter, enabled, branches int) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	enabled, branches = sim.Successors(prog, cfg, mode, rng, maxBranches, func(sel []int, next []counter) bool {
		sels = append(sels, append([]int(nil), sel...))
		nexts = append(nexts, append([]counter(nil), next...))
		return true
	})
	return
}

func TestSuccessorsBranchCounts(t *testing.T) {
	prog := incProgram(3, 5)
	cfg := []counter{{0}, {0}, {0}}
	for _, tc := range []struct {
		mode     sim.SelectionMode
		branches int
	}{
		{sim.SelectCentral, 3},
		{sim.SelectSynchronous, 1},
		{sim.SelectAllSubsets, 7}, // 2^3 - 1
	} {
		sels, _, enabled, branches := collect(t, prog, cfg, tc.mode, 0)
		if enabled != 3 || branches != tc.branches || len(sels) != tc.branches {
			t.Fatalf("%s: enabled=%d branches=%d (want 3, %d)", tc.mode, enabled, branches, tc.branches)
		}
	}
}

func TestSuccessorsApplySemantics(t *testing.T) {
	prog := incProgram(3, 5)
	cfg := []counter{{1}, {2}, {3}}
	_, nexts, _, _ := collect(t, prog, cfg, sim.SelectAllSubsets, 0)
	// Mask i+1 in enumeration order increments exactly the selected set.
	for i, next := range nexts {
		mask := i + 1
		for p := 0; p < 3; p++ {
			want := cfg[p].V
			if mask&(1<<p) != 0 {
				want++
			}
			if next[p].V != want {
				t.Fatalf("branch %d: proc %d has %d, want %d", i, p, next[p].V, want)
			}
		}
	}
	// The input configuration is never mutated.
	if cfg[0].V != 1 || cfg[1].V != 2 || cfg[2].V != 3 {
		t.Fatalf("input configuration mutated: %v", cfg)
	}
}

func TestSuccessorsPartialEnablement(t *testing.T) {
	prog := incProgram(3, 5)
	cfg := []counter{{5}, {0}, {5}} // only process 1 enabled
	sels, nexts, enabled, branches := collect(t, prog, cfg, sim.SelectAllSubsets, 0)
	if enabled != 1 || branches != 1 {
		t.Fatalf("enabled=%d branches=%d, want 1, 1", enabled, branches)
	}
	if len(sels[0]) != 1 || sels[0][0] != 1 || nexts[0][1].V != 1 {
		t.Fatalf("unexpected branch: sel=%v next=%v", sels[0], nexts[0])
	}
}

func TestSuccessorsTerminal(t *testing.T) {
	prog := incProgram(2, 0) // nothing ever enabled
	cfg := []counter{{0}, {0}}
	_, _, enabled, branches := collect(t, prog, cfg, sim.SelectAllSubsets, 0)
	if enabled != 0 || branches != 0 {
		t.Fatalf("terminal configuration yielded enabled=%d branches=%d", enabled, branches)
	}
}

func TestSuccessorsMaxBranchesCap(t *testing.T) {
	prog := incProgram(4, 5)
	cfg := make([]counter, 4)
	_, branches := sim.Successors(prog, cfg, sim.SelectAllSubsets, rand.New(rand.NewSource(1)), 5,
		func([]int, []counter) bool { return true })
	if branches != 5 {
		t.Fatalf("cap ignored: %d branches", branches)
	}
}

func TestSuccessorsEarlyStop(t *testing.T) {
	prog := incProgram(4, 5)
	cfg := make([]counter, 4)
	seen := 0
	_, branches := sim.Successors(prog, cfg, sim.SelectAllSubsets, rand.New(rand.NewSource(1)), 0,
		func([]int, []counter) bool { seen++; return seen < 3 })
	if seen != 3 || branches != 3 {
		t.Fatalf("early stop broken: seen=%d branches=%d", seen, branches)
	}
}

func TestSuccessorsPriorityResolution(t *testing.T) {
	// Two enabled actions: the later-listed (higher-priority) one must
	// execute, matching Engine semantics (§2.2).
	prog := &sim.Program[counter]{
		NumProcs: 1,
		Actions: []sim.Action[counter]{
			{Name: "low", Guard: func([]counter, int) bool { return true },
				Body: func(_ []counter, _ int, next *counter, _ *rand.Rand) { next.V = 1 }},
			{Name: "high", Guard: func([]counter, int) bool { return true },
				Body: func(_ []counter, _ int, next *counter, _ *rand.Rand) { next.V = 2 }},
		},
		Init: func(int, *rand.Rand) counter { return counter{} },
	}
	next := make([]counter, 1)
	sim.Apply(prog, []counter{{0}}, next, []int{0}, rand.New(rand.NewSource(1)))
	if next[0].V != 2 {
		t.Fatalf("priority action not executed: V=%d", next[0].V)
	}
}

func TestApplyPanicsOnDisabledSelection(t *testing.T) {
	prog := incProgram(2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a disabled selection")
		}
	}()
	next := make([]counter, 2)
	sim.Apply(prog, make([]counter, 2), next, []int{0}, rand.New(rand.NewSource(1)))
}

// TestSuccessorsCoverEngineSteps: whatever transition the engine takes
// under any daemon is one of the enumerated SelectAllSubsets branches.
func TestSuccessorsCoverEngineSteps(t *testing.T) {
	for _, d := range []sim.Daemon{
		sim.Synchronous{}, &sim.Central{}, sim.RandomSubset{P: 0.4}, &sim.WeaklyFair{MaxAge: 3},
	} {
		prog := incProgram(3, 6)
		eng := sim.NewEngine(prog, d, 42)
		for step := 0; step < 30; step++ {
			prev := append([]counter(nil), eng.Config()...)
			if eng.Step() == nil {
				break
			}
			got := append([]counter(nil), eng.Config()...)
			found := false
			sim.Successors(prog, prev, sim.SelectAllSubsets, rand.New(rand.NewSource(1)), 0,
				func(_ []int, next []counter) bool {
					for p := range next {
						if next[p] != got[p] {
							return true
						}
					}
					found = true
					return false
				})
			if !found {
				t.Fatalf("daemon %s step %d: engine transition not enumerated", d.Name(), step)
			}
		}
	}
}
