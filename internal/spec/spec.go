// Package spec implements runtime monitors for the committee
// coordination specification (paper §2.3, §2.4, §3.1):
//
//   - Exclusion: no two conflicting committees meet simultaneously;
//   - Synchronization: a meeting convenes only if all members were
//     waiting;
//   - Essential Discussion (2-phase, phase 1): a meeting terminates only
//     after every participant completed its essential discussion;
//   - Progress (bounded form): an all-waiting committee neighborhood
//     does not sit idle past a configurable window;
//   - plus fairness gap accounting used by the Professor/Committee
//     Fairness experiments.
//
// The monitors are generic over the algorithm's state type via a Probe of
// abstract predicates, so the same checker validates CC1/CC2/CC3 and the
// baseline algorithms. Because the checker inspects only convene events
// occurring *during* the monitored run, running it from an arbitrary
// initial configuration checks exactly the snap-stabilization contract
// (§2.5): every meeting convened after the faults satisfies the
// specification; pre-existing (corrupted) meetings are only required not
// to interfere.
package spec

import (
	"fmt"

	"repro/internal/hypergraph"
)

// Probe abstracts an algorithm for monitoring.
type Probe[S any] struct {
	H *hypergraph.H
	// Meets reports whether committee e meets in cfg.
	Meets func(cfg []S, e int) bool
	// Waiting reports whether professor p is waiting in the original
	// problem's sense (for CC: S_p ∈ {looking, waiting}).
	Waiting func(cfg []S, p int) bool
	// Done reports whether professor p has completed its essential
	// discussion (for CC: S_p = done).
	Done func(cfg []S, p int) bool
}

// Violation is one detected specification violation.
type Violation struct {
	Step int
	Kind string
	Msg  string
}

func (v Violation) String() string {
	return fmt.Sprintf("step %d: %s: %s", v.Step, v.Kind, v.Msg)
}

const (
	KindExclusion = "exclusion"
	KindSync      = "synchronization"
	KindEssential = "essential-discussion"
	KindProgress  = "progress"
)

// MeetsVector evaluates probe.Meets for every committee into dst
// (grown/resliced as needed) and returns it. Callers on hot paths — the
// runtime Checker, the exhaustive explorer — compute each
// configuration's vector once and feed the *Meets variants below, so no
// committee predicate is evaluated twice for the same configuration.
func MeetsVector[S any](probe Probe[S], cfg []S, dst []bool) []bool {
	m := probe.H.M()
	if cap(dst) < m {
		dst = make([]bool, m)
	}
	dst = dst[:m]
	for e := 0; e < m; e++ {
		dst[e] = probe.Meets(cfg, e)
	}
	return dst
}

// ExclusionViolationsMeets appends to dst a violation for every pair of
// conflicting committees meeting simultaneously (per the configuration's
// precomputed MeetsVector), and returns the result. Exclusion is a state
// property: it is checked on every configuration, including initial
// (possibly corrupted) ones. Both the runtime Checker and the exhaustive
// explorer (internal/explore) use this predicate, so a sampled run and a
// model-checked state space judge configurations identically.
func ExclusionViolationsMeets[S any](probe Probe[S], meets []bool, step int, dst []Violation) []Violation {
	h := probe.H
	var meeting []int
	for e, m := range meets {
		if m {
			meeting = append(meeting, e)
		}
	}
	for i := 0; i < len(meeting); i++ {
		for j := i + 1; j < len(meeting); j++ {
			if h.Edge(meeting[i]).Conflicts(h.Edge(meeting[j])) {
				dst = append(dst, Violation{Step: step, Kind: KindExclusion,
					Msg: fmt.Sprintf("conflicting committees %s and %s meet simultaneously",
						h.Edge(meeting[i]), h.Edge(meeting[j]))})
			}
		}
	}
	return dst
}

// EventViolationsMeets appends to dst the Synchronization and
// Essential-Discussion violations of one transition prev→next — given
// the precomputed MeetsVectors of the previous (was) and current (is)
// configurations — and returns the result:
//
//   - a committee that convenes (meets in next but not in prev) must have
//     had every member waiting in prev (§2.3 Synchronization);
//   - a committee whose meeting terminates (meets in prev but not in
//     next) must have had every participant done in prev (§2.4
//     Essential Discussion, phase 1).
//
// Only prev's member states are read (the judged predicates are
// pre-transition). Because only events *during* the transition are
// judged, checking every transition from an arbitrary initial
// configuration checks exactly the snap-stabilization contract (§2.5).
func EventViolationsMeets[S any](probe Probe[S], prev []S, was, is []bool, step int, dst []Violation) []Violation {
	h := probe.H
	for e := 0; e < h.M(); e++ {
		switch {
		case is[e] && !was[e]:
			for _, q := range h.Edge(e) {
				if !probe.Waiting(prev, q) {
					dst = append(dst, Violation{Step: step, Kind: KindSync,
						Msg: fmt.Sprintf("committee %s convened but professor %d was not waiting", h.Edge(e), q)})
				}
			}
		case !is[e] && was[e]:
			for _, q := range h.Edge(e) {
				if !probe.Done(prev, q) {
					dst = append(dst, Violation{Step: step, Kind: KindEssential,
						Msg: fmt.Sprintf("committee %s terminated but professor %d had not finished its essential discussion", h.Edge(e), q)})
				}
			}
		}
	}
	return dst
}

// Checker validates a run step by step. Feed it consecutive
// configurations with Check; it accumulates Violations.
type Checker[S any] struct {
	Probe Probe[S]
	// ProgressWindow, if > 0, flags an edge whose members are all
	// continuously waiting for that many steps while the edge never
	// meets and no member ever joins any meeting. Use only with weakly
	// fair daemons and a generous window.
	ProgressWindow int

	Violations []Violation

	havePrev   bool
	prevCfg    []S
	prevMeets  []bool // MeetsVector of prevCfg, computed when it was current
	meetsBuf   []bool
	allWaitFor []int // per edge: consecutive steps with all members waiting and not meeting
}

// NewChecker builds a Checker over probe.
func NewChecker[S any](probe Probe[S], progressWindow int) *Checker[S] {
	return &Checker[S]{
		Probe:          probe,
		ProgressWindow: progressWindow,
		prevMeets:      make([]bool, probe.H.M()),
		meetsBuf:       make([]bool, probe.H.M()),
		allWaitFor:     make([]int, probe.H.M()),
	}
}

func (c *Checker[S]) violate(step int, kind, format string, args ...any) {
	c.Violations = append(c.Violations, Violation{Step: step, Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// Check inspects the configuration reached after the given step. The
// first call records the initial configuration (step 0): existing
// meetings there are treated as pre-fault and not judged.
func (c *Checker[S]) Check(step int, cfg []S) {
	h := c.Probe.H
	meets := MeetsVector(c.Probe, cfg, c.meetsBuf) // one evaluation per edge per step

	// Exclusion holds in every configuration, including the initial one.
	c.Violations = ExclusionViolationsMeets(c.Probe, meets, step, c.Violations)

	if c.havePrev {
		c.Violations = EventViolationsMeets(c.Probe, c.prevCfg, c.prevMeets, meets, step, c.Violations)

		if c.ProgressWindow > 0 {
			for e := 0; e < h.M(); e++ {
				allWaiting := true
				for _, q := range h.Edge(e) {
					if !c.Probe.Waiting(cfg, q) {
						allWaiting = false
						break
					}
				}
				if allWaiting && !meets[e] {
					c.allWaitFor[e]++
					if c.allWaitFor[e] == c.ProgressWindow {
						c.violate(step, KindProgress,
							"committee %s: all members waiting for %d steps with no meeting involving them",
							h.Edge(e), c.ProgressWindow)
					}
				} else {
					c.allWaitFor[e] = 0
				}
			}
		}
	}

	c.prevMeets, c.meetsBuf = meets, c.prevMeets
	c.prevCfg = append(c.prevCfg[:0], cfg...) // states are value types; shallow copy suffices for reads
	c.havePrev = true
}

// Ok reports whether no violations were recorded.
func (c *Checker[S]) Ok() bool { return len(c.Violations) == 0 }

// ByKind returns the violations of a given kind.
func (c *Checker[S]) ByKind(kind string) []Violation {
	var out []Violation
	for _, v := range c.Violations {
		if v.Kind == kind {
			out = append(out, v)
		}
	}
	return out
}

// FairnessTracker measures participation gaps, the witnesses for
// Professor Fairness (Definition 3) and Committee Fairness
// (Definition 4): under a fair algorithm the maximum gap between
// successive participations stays bounded; under an unfair one it grows
// with the run.
type FairnessTracker struct {
	H *hypergraph.H

	ProfCount  []int // participations per professor
	CommCount  []int // convene events per committee
	lastProf   []int
	lastComm   []int
	MaxProfGap []int
	MaxCommGap []int
	now        int
}

// NewFairnessTracker builds a tracker.
func NewFairnessTracker(h *hypergraph.H) *FairnessTracker {
	return &FairnessTracker{
		H:          h,
		ProfCount:  make([]int, h.N()),
		CommCount:  make([]int, h.M()),
		lastProf:   make([]int, h.N()),
		lastComm:   make([]int, h.M()),
		MaxProfGap: make([]int, h.N()),
		MaxCommGap: make([]int, h.M()),
	}
}

// Convened records a convene event of committee e at logical time t
// (step or round).
func (f *FairnessTracker) Convened(t, e int) {
	if t > f.now {
		f.now = t
	}
	if gap := t - f.lastComm[e]; gap > f.MaxCommGap[e] {
		f.MaxCommGap[e] = gap
	}
	f.lastComm[e] = t
	f.CommCount[e]++
	for _, p := range f.H.Edge(e) {
		if gap := t - f.lastProf[p]; gap > f.MaxProfGap[p] {
			f.MaxProfGap[p] = gap
		}
		f.lastProf[p] = t
		f.ProfCount[p]++
	}
}

// Finish closes open gaps at end time t (a professor that never met has
// gap t).
func (f *FairnessTracker) Finish(t int) {
	for p := range f.lastProf {
		if gap := t - f.lastProf[p]; gap > f.MaxProfGap[p] {
			f.MaxProfGap[p] = gap
		}
	}
	for e := range f.lastComm {
		if gap := t - f.lastComm[e]; gap > f.MaxCommGap[e] {
			f.MaxCommGap[e] = gap
		}
	}
}

// MaxGapProfessors returns the maximum professor gap (ignoring
// professors in no committee).
func (f *FairnessTracker) MaxGapProfessors() int {
	max := 0
	for p, g := range f.MaxProfGap {
		if len(f.H.EdgesOf(p)) == 0 {
			continue
		}
		if g > max {
			max = g
		}
	}
	return max
}

// MaxGapCommittees returns the maximum committee gap.
func (f *FairnessTracker) MaxGapCommittees() int {
	max := 0
	for _, g := range f.MaxCommGap {
		if g > max {
			max = g
		}
	}
	return max
}
