package spec

import (
	"strings"
	"testing"

	"repro/internal/hypergraph"
)

// tiny abstract state for driving the checker directly.
type pstate struct {
	meetingEdge int // edge the professor is meeting in, or -1
	waiting     bool
	done        bool
}

func probeFor(h *hypergraph.H) Probe[pstate] {
	return Probe[pstate]{
		H: h,
		Meets: func(cfg []pstate, e int) bool {
			for _, q := range h.Edge(e) {
				if cfg[q].meetingEdge != e {
					return false
				}
			}
			return true
		},
		Waiting: func(cfg []pstate, p int) bool { return cfg[p].waiting },
		Done:    func(cfg []pstate, p int) bool { return cfg[p].done },
	}
}

func allIdle(n int) []pstate {
	cfg := make([]pstate, n)
	for i := range cfg {
		cfg[i].meetingEdge = -1
	}
	return cfg
}

func TestCheckerCleanRun(t *testing.T) {
	h := hypergraph.Figure2() // e0={0,1}, e1={0,2,4}, e2={2,3}
	c := NewChecker(probeFor(h), 0)

	cfg := allIdle(5)
	c.Check(0, cfg)

	// All members of e0 wait, then convene, then finish essential
	// discussion, then the meeting terminates: no violations.
	cfg2 := allIdle(5)
	cfg2[0].waiting, cfg2[1].waiting = true, true
	c.Check(1, cfg2)

	cfg3 := allIdle(5)
	cfg3[0].meetingEdge, cfg3[1].meetingEdge = 0, 0
	c.Check(2, cfg3)

	cfg4 := allIdle(5)
	cfg4[0].meetingEdge, cfg4[1].meetingEdge = 0, 0
	cfg4[0].done, cfg4[1].done = true, true
	c.Check(3, cfg4)

	cfg5 := allIdle(5)
	cfg5[0].done, cfg5[1].done = true, true // left, marks retained
	c.Check(4, cfg5)

	if !c.Ok() {
		t.Fatalf("clean run flagged: %v", c.Violations)
	}
}

func TestCheckerExclusionViolation(t *testing.T) {
	h := hypergraph.Figure2()
	c := NewChecker(probeFor(h), 0)
	cfg := allIdle(5)
	// e0={0,1} and e1={0,2,4} conflict on professor 0. Make both "meet"
	// (possible only for a buggy algorithm: professor 0 in two meetings).
	// Our abstract state can't point at two edges, so use e1 and e2
	// sharing professor 2: e1={0,2,4}, e2={2,3} — also impossible with a
	// single pointer. Instead build a 4-vertex hypergraph with disjoint
	// pointers but conflicting committees... the simplest way: professor
	// 2 points at e2 while e1's check passes via its members 0,4 — it
	// cannot. So construct a dedicated hypergraph where two distinct
	// edges have the same member set semantics: use a custom probe that
	// reports both edges meeting.
	bad := Probe[pstate]{
		H:       h,
		Meets:   func(cfg []pstate, e int) bool { return e == 0 || e == 1 },
		Waiting: func(cfg []pstate, p int) bool { return true },
		Done:    func(cfg []pstate, p int) bool { return true },
	}
	c = NewChecker(bad, 0)
	c.Check(0, cfg)
	if len(c.ByKind(KindExclusion)) == 0 {
		t.Fatal("conflicting simultaneous meetings must be flagged")
	}
}

func TestCheckerSynchronizationViolation(t *testing.T) {
	h := hypergraph.Figure2()
	c := NewChecker(probeFor(h), 0)
	cfg := allIdle(5) // nobody waiting
	c.Check(0, cfg)
	cfg2 := allIdle(5)
	cfg2[0].meetingEdge, cfg2[1].meetingEdge = 0, 0 // e0 convenes from idle members
	c.Check(1, cfg2)
	vs := c.ByKind(KindSync)
	if len(vs) != 2 { // both members 0 and 1 were not waiting
		t.Fatalf("want 2 sync violations, got %v", c.Violations)
	}
	if !strings.Contains(vs[0].Msg, "not waiting") {
		t.Fatalf("unexpected message: %s", vs[0].Msg)
	}
}

func TestCheckerEssentialViolation(t *testing.T) {
	h := hypergraph.Figure2()
	c := NewChecker(probeFor(h), 0)
	cfg := allIdle(5)
	cfg[0].waiting, cfg[1].waiting = true, true
	c.Check(0, cfg)
	cfg2 := allIdle(5)
	cfg2[0].meetingEdge, cfg2[1].meetingEdge = 0, 0
	c.Check(1, cfg2) // convene fine
	cfg3 := allIdle(5)
	c.Check(2, cfg3) // terminate with nobody done: phase-1 violated
	if len(c.ByKind(KindEssential)) != 2 {
		t.Fatalf("want 2 essential violations, got %v", c.Violations)
	}
}

func TestCheckerInitialMeetingsExempt(t *testing.T) {
	// Snap-stabilization semantics: meetings already in progress at the
	// first observed configuration are pre-fault and not judged for
	// synchronization (they did not convene during the run).
	h := hypergraph.Figure2()
	c := NewChecker(probeFor(h), 0)
	cfg := allIdle(5)
	cfg[0].meetingEdge, cfg[1].meetingEdge = 0, 0 // meeting at step 0
	c.Check(0, cfg)
	c.Check(1, cfg)
	if !c.Ok() {
		t.Fatalf("pre-existing meetings must not be judged: %v", c.Violations)
	}
}

func TestCheckerProgressWindow(t *testing.T) {
	h := hypergraph.Figure2()
	c := NewChecker(probeFor(h), 5)
	cfg := allIdle(5)
	for p := range cfg {
		cfg[p].waiting = true
	}
	for step := 0; step < 10; step++ {
		c.Check(step, cfg)
	}
	if len(c.ByKind(KindProgress)) == 0 {
		t.Fatal("stuck all-waiting committees must be flagged")
	}
	// Exactly one violation per edge (fired once at the window).
	if got := len(c.ByKind(KindProgress)); got != h.M() {
		t.Fatalf("want %d progress violations, got %d", h.M(), got)
	}
}

func TestCheckerProgressResetsOnActivity(t *testing.T) {
	h := hypergraph.Figure2()
	c := NewChecker(probeFor(h), 5)
	waiting := allIdle(5)
	for p := range waiting {
		waiting[p].waiting = true
	}
	idle := allIdle(5)
	for step := 0; step < 20; step++ {
		if step%3 == 0 {
			c.Check(step, idle) // break the continuity
		} else {
			c.Check(step, waiting)
		}
	}
	if len(c.ByKind(KindProgress)) != 0 {
		t.Fatalf("interrupted waiting must not be flagged: %v", c.Violations)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Step: 3, Kind: KindSync, Msg: "boom"}
	if got := v.String(); got != "step 3: synchronization: boom" {
		t.Fatalf("String() = %q", got)
	}
}

func TestFairnessTracker(t *testing.T) {
	h := hypergraph.Figure2()
	f := NewFairnessTracker(h)
	f.Convened(10, 0) // professors 0,1
	f.Convened(15, 2) // professors 2,3
	f.Convened(30, 0)
	f.Finish(50)
	if f.ProfCount[0] != 2 || f.ProfCount[2] != 1 || f.ProfCount[4] != 0 {
		t.Fatalf("counts: %v", f.ProfCount)
	}
	if f.CommCount[0] != 2 || f.CommCount[1] != 0 {
		t.Fatalf("committee counts: %v", f.CommCount)
	}
	// Professor 4 never met: gap = 50.
	if f.MaxProfGap[4] != 50 {
		t.Fatalf("prof 4 gap = %d, want 50", f.MaxProfGap[4])
	}
	// Professor 0: gaps 10, 20, then 20 to finish -> max 20.
	if f.MaxProfGap[0] != 20 {
		t.Fatalf("prof 0 gap = %d, want 20", f.MaxProfGap[0])
	}
	if f.MaxGapProfessors() != 50 {
		t.Fatalf("max prof gap = %d", f.MaxGapProfessors())
	}
	if f.MaxGapCommittees() != 50 {
		t.Fatalf("max committee gap = %d", f.MaxGapCommittees())
	}
}
