package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/chaos"
)

// campaignsDir is the subdirectory of the cache root holding campaign
// manifests (one JSON file per campaign id). Manifests are engine-
// independent metadata, not verdicts: both engines store them the same
// way, so a warehouse opened under either engine answers the same
// campaign queries.
const campaignsDir = "campaigns"

// base carries everything the two store engines share: the root
// directory, the (possibly fault-injecting) filesystem, the retry
// policy, the quarantine machinery, checkpoint blobs, campaign
// manifests and temp-file GC. The engines embed it; Interface is the
// surface consumers see.
type base struct {
	dir string
	fs  chaos.FS
	// Retry bounds the transient-failure retry loop around durable
	// writes and reads. Defaults to chaos.DefaultPolicy.
	Retry chaos.Policy
	// Log, when set, receives one line per quarantined artifact and
	// per exhausted retry (printf-style).
	Log func(format string, args ...any)

	quarantined atomic.Int64
}

// Dir returns the cache root.
func (b *base) Dir() string { return b.dir }

// FS returns the filesystem the store does its I/O through.
func (b *base) FS() chaos.FS { return b.fs }

// SetLog installs the store's log sink (Interface-level access to the
// Log field the concrete engines expose).
func (b *base) SetLog(fn func(format string, args ...any)) { b.Log = fn }

// Quarantined returns the number of corrupted artifacts this handle
// has preserved in the quarantine directory.
func (b *base) Quarantined() int64 { return b.quarantined.Load() }

func (b *base) logf(format string, args ...any) {
	if b.Log != nil {
		b.Log(format, args...)
	}
}

// quarantineDst picks a non-clobbering destination for a quarantined
// artifact: the same key can be corrupted, repaired and corrupted
// again, and each specimen matters.
func (b *base) quarantineDst(name string) string {
	dst := filepath.Join(b.dir, QuarantineDir, name)
	for i := 1; ; i++ {
		if _, err := b.fs.Stat(dst); err != nil {
			break
		}
		dst = filepath.Join(b.dir, QuarantineDir, fmt.Sprintf("%s.%d", name, i))
	}
	return dst
}

// quarantine moves a corrupted artifact file out of the live tree into
// DIR/quarantine/ (falling back to deletion if even that fails), so it
// is preserved for diagnosis but never read again. Best-effort: the
// caller has already decided the artifact is a miss.
func (b *base) quarantine(path, detail string) {
	dst := b.quarantineDst(filepath.Base(path))
	// Quarantine must work on the degraded disk that corrupted the
	// artifact in the first place, so tolerate transient failures.
	err := chaos.Retry(context.Background(), b.Retry, func() error {
		if err := b.fs.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		return b.fs.Rename(path, dst)
	})
	if err != nil {
		b.fs.Remove(path)
	}
	b.quarantined.Add(1)
	b.logf("store: quarantined %s (%s)", path, detail)
}

// QuarantineBytes preserves corrupted bytes that arrived without a
// file of their own — a damaged gossip transfer — as a named specimen
// under DIR/quarantine/ and counts it, exactly like engine-internal
// corruption. The serving tier's gossip ingest calls this for
// transfers that fail DecodeEntry, so wire damage leaves the same
// audit trail disk damage does.
func (b *base) QuarantineBytes(name string, data []byte, detail string) {
	b.quarantineBytes(name, data, detail)
}

// quarantineBytes preserves a corrupted artifact that has no file of
// its own — a damaged record inside a log segment — by writing the
// raw bytes as a specimen into DIR/quarantine/. Best-effort like
// quarantine.
func (b *base) quarantineBytes(name string, data []byte, detail string) {
	dst := b.quarantineDst(name)
	chaos.Retry(context.Background(), b.Retry, func() error {
		if err := b.fs.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		return b.fs.WriteFile(dst, data, 0o600)
	})
	b.quarantined.Add(1)
	b.logf("store: quarantined %s (%s)", name, detail)
}

// writeAtomic lands data at path via temp file + fsync + rename in the
// same directory: a crash or injected fault at any point leaves either
// the previous content or the new content, never a torn file.
func (b *base) writeAtomic(path string, data []byte) error {
	if err := b.fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := b.fs.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		b.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		// Failed fsync means the bytes may not be durable: the temp file
		// is poison, not a candidate for rename.
		tmp.Close()
		b.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		b.fs.Remove(tmp.Name())
		return err
	}
	if err := b.fs.Rename(tmp.Name(), path); err != nil {
		b.fs.Remove(tmp.Name())
		return err
	}
	return nil
}

// PutCampaign persists a campaign manifest — the cell keys in
// expansion order under the campaign's content id — atomically.
// Manifests are what make the query plane's per-campaign summary and
// diff work offline, across restarts and across processes.
func (b *base) PutCampaign(id string, keys []string) error {
	if id == "" || strings.ContainsAny(id, "/\\.") {
		return fmt.Errorf("store: bad campaign id %q", id)
	}
	data, err := json.Marshal(campaignManifest{ID: id, Keys: keys})
	if err != nil {
		return fmt.Errorf("store: marshal campaign manifest: %v", err)
	}
	path := filepath.Join(b.dir, campaignsDir, id+".json")
	err = chaos.Retry(context.Background(), b.Retry, func() error {
		return b.writeAtomic(path, append(data, '\n'))
	})
	if err != nil {
		b.logf("store: put campaign %s failed: %s", id[:min(12, len(id))], chaos.Describe(err))
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// campaignManifest is the on-disk campaign schema.
type campaignManifest struct {
	ID   string   `json:"id"`
	Keys []string `json:"keys"`
}

// GetCampaign returns the cell keys of a persisted campaign manifest
// in expansion order. A missing, unreadable or damaged manifest is a
// miss (damage is additionally quarantined).
func (b *base) GetCampaign(id string) ([]string, bool) {
	if id == "" || strings.ContainsAny(id, "/\\.") {
		return nil, false
	}
	path := filepath.Join(b.dir, campaignsDir, id+".json")
	var data []byte
	err := chaos.Retry(context.Background(), b.Retry, func() error {
		var rerr error
		data, rerr = b.fs.ReadFile(path)
		return rerr
	})
	if err != nil {
		return nil, false
	}
	var m campaignManifest
	if err := json.Unmarshal(data, &m); err != nil {
		b.quarantine(path, "undecodable campaign manifest: "+err.Error())
		return nil, false
	}
	if m.ID != id {
		b.quarantine(path, "campaign manifest id mismatch")
		return nil, false
	}
	return m.Keys, true
}

// Campaigns lists the ids of all persisted campaign manifests, sorted.
func (b *base) Campaigns() []string {
	entries, err := os.ReadDir(filepath.Join(b.dir, campaignsDir))
	if err != nil {
		return nil
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		id, ok := strings.CutSuffix(e.Name(), ".json")
		if ok && !strings.HasPrefix(id, ".") {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// GCTemp removes abandoned temp files left anywhere under the cache
// root by a killed process — .put-* (atomic writes), .ckpt-*
// (checkpoint writes), .seg-* (segment creation) and *.tmp — and
// returns the number removed. Temp files are invisible to every read
// path, so this is pure hygiene and safe to run concurrently with
// live jobs only at startup (a live write's in-flight temp file could
// be swept).
func (b *base) GCTemp() int {
	removed := 0
	quarantine := filepath.Join(b.dir, QuarantineDir)
	filepath.WalkDir(b.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if path == quarantine {
				return filepath.SkipDir
			}
			return nil
		}
		base := filepath.Base(path)
		if strings.HasPrefix(base, ".put-") || strings.HasPrefix(base, ".ckpt-") ||
			strings.HasPrefix(base, ".seg-") || strings.HasSuffix(base, ".tmp") {
			if b.fs.Remove(path) == nil {
				removed++
			}
		}
		return nil
	})
	return removed
}

// gcCheckpoints removes orphaned checkpoint blobs: snapshots whose job
// already has a verdict entry according to has (the completion-time
// Delete crashed or another process finished the job), plus abandoned
// temp files. Each engine supplies its own verdict-existence probe.
func (b *base) gcCheckpoints(has func(key string) bool) int {
	removed := 0
	root := filepath.Join(b.dir, "checkpoints")
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if strings.HasPrefix(base, ".ckpt-") {
			// Abandoned temp file from a crashed Save.
			if b.fs.Remove(path) == nil {
				removed++
			}
			return nil
		}
		key, ok := strings.CutSuffix(base, ".ckpt")
		if !ok {
			return nil
		}
		if has(key) {
			if b.fs.Remove(path) == nil {
				removed++
			}
		}
		return nil
	})
	return removed
}
