package store_test

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/store"
)

// quarantineCount counts files parked under DIR/quarantine.
func quarantineCount(t *testing.T, st store.Interface) int {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(st.Dir(), store.QuarantineDir))
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return len(entries)
}

// TestCorruptArtifactTable is the structural-boundary sweep the
// robustness issue asks for: a verdict entry truncated or bit-flipped
// at every interesting offset must read as a miss (quarantined when the
// damage is detectable as corruption), never panic, never serve a wrong
// verdict — and a fresh Put must repair it byte-identically.
func TestCorruptArtifactTable(t *testing.T) {
	st := open(t)
	spec := smallSpec()
	res, err := campaign.Execute(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := st.Put(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, st, spec)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := len(good)

	type mutation struct {
		name string
		data []byte
	}
	var muts []mutation
	// Truncations at every structural boundary: empty, one byte, the
	// middle, just before the closing brace. (Cutting only the cosmetic
	// trailing newline at n-1 leaves a structurally intact entry, so the
	// deepest damaging cut is n-2: it takes the closing brace with it.)
	for _, cut := range []int{0, 1, n / 4, n / 2, n - 3, n - 2} {
		muts = append(muts, mutation{name: "truncate@" + itoa(cut), data: good[:cut]})
	}
	// Single bit flips spread across the entry: they land in the
	// version digits, the spec, the checksum hex, or the result body.
	for _, off := range []int{0, n / 8, n / 4, n / 2, 3 * n / 4, n - 2} {
		c := append([]byte(nil), good...)
		c[off] ^= 0x04
		muts = append(muts, mutation{name: "bitflip@" + itoa(off), data: c})
	}

	for _, m := range muts {
		if err := os.WriteFile(path, m.data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := st.Get(spec); ok {
			t.Fatalf("%s: damaged entry served as a hit", m.name)
		}
		if _, _, _, ok := st.GetByKey(spec.Key()); ok {
			t.Fatalf("%s: damaged entry served by key", m.name)
		}
		// Repair: the next Put restores the exact bytes.
		raw2, err := st.Put(spec, res)
		if err != nil {
			t.Fatalf("%s: repair Put: %v", m.name, err)
		}
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("%s: repair not byte-identical", m.name)
		}
		if _, raw3, ok := st.Get(spec); !ok || !bytes.Equal(raw, raw3) {
			t.Fatalf("%s: repaired entry not served byte-identically", m.name)
		}
	}
	// Detectably-corrupt variants were parked, and the counter agrees
	// with the directory (version-digit flips are format-drift misses,
	// so equality with len(muts) is not expected).
	if st.Quarantined() == 0 {
		t.Fatal("no artifact was quarantined across the whole table")
	}
	if got := int64(quarantineCount(t, st)); got != st.Quarantined() {
		t.Fatalf("quarantine dir holds %d files, counter says %d", got, st.Quarantined())
	}
	// Quarantined artifacts are invisible to Len.
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for ; n > 0; n /= 10 {
		b = append([]byte{byte('0' + n%10)}, b...)
	}
	return string(b)
}

// TestPutRetriesTransient: a single injected ENOSPC mid-Put is retried
// away; the entry lands byte-identical to an unfaulted write.
func TestPutRetriesTransient(t *testing.T) {
	ffs := chaos.NewFaultFS(nil, chaos.Faults{FailWriteAt: 2})
	st, err := store.OpenFS(t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	res, err := campaign.Execute(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := st.Put(spec, res)
	if err != nil {
		t.Fatalf("Put did not retry a transient fault: %v", err)
	}
	if ffs.Stats()["write"] == 0 {
		t.Fatal("fault was not injected — the test exercised nothing")
	}
	_, raw2, ok := st.Get(spec)
	if !ok || !bytes.Equal(raw, raw2) {
		t.Fatal("entry not byte-identical after a retried Put")
	}
}

// TestPutPermanentFailsFast: EACCES is not retried — Put fails once,
// classified Permanent, with the path in the message.
func TestPutPermanentFailsFast(t *testing.T) {
	ffs := chaos.NewFaultFS(nil, chaos.Faults{})
	st, err := store.OpenFS(t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	res, err := campaign.Execute(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	ffs.SetFaults(chaos.Faults{WriteErr: 1, Permanent: 1})
	before := ffs.Stats()["write"]
	_, perr := st.Put(spec, res)
	if perr == nil {
		t.Fatal("Put succeeded through a permanently failing disk")
	}
	if chaos.Classify(perr) != chaos.Permanent {
		t.Fatalf("Classify(%v) = %v, want Permanent", perr, chaos.Classify(perr))
	}
	if injected := ffs.Stats()["write"] - before; injected != 1 {
		t.Fatalf("%d write faults injected, want 1 (permanent errors must not retry)", injected)
	}
}

// TestBitFlipPutQuarantinedOnRead: a silently-corrupted write (the
// write reports success, one bit lands flipped) is caught by the entry
// checksum on the next read — miss + quarantine, never a wrong verdict
// — and the healed store re-persists the true bytes.
func TestBitFlipPutQuarantinedOnRead(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		ffs := chaos.NewFaultFS(nil, chaos.Faults{})
		st, err := store.OpenFS(t.TempDir(), ffs)
		if err != nil {
			t.Fatal(err)
		}
		spec := smallSpec()
		res, err := campaign.Execute(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		ffs.SetFaults(chaos.Faults{Seed: seed, BitFlip: 1})
		raw, err := st.Put(spec, res)
		if err != nil {
			t.Fatalf("seed %d: silent corruption must not error the Put: %v", seed, err)
		}
		if ffs.Stats()["flip"] == 0 {
			t.Fatalf("seed %d: no flip injected", seed)
		}
		ffs.SetFaults(chaos.Faults{}) // heal: the damage is at rest now
		if _, _, ok := st.Get(spec); ok {
			t.Fatalf("seed %d: bit-flipped entry served as a hit", seed)
		}
		raw2, err := st.Put(spec, res)
		if err != nil {
			t.Fatalf("seed %d: repair Put: %v", seed, err)
		}
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("seed %d: repair not byte-identical", seed)
		}
		if _, raw3, ok := st.Get(spec); !ok || !bytes.Equal(raw, raw3) {
			t.Fatalf("seed %d: healed store does not serve the true bytes", seed)
		}
	}
}

// TestCheckpointQuarantine: the explorer's reject hook moves a bad
// snapshot aside so the next Load is a clean miss, not a crash loop.
func TestCheckpointQuarantine(t *testing.T) {
	st := open(t)
	ck := st.Checkpoint("cafe01")
	if err := ck.Save(func(w io.Writer) error {
		_, err := w.Write([]byte("snapshot the explorer will reject"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if rc, err := ck.Load(); err != nil || rc == nil {
		t.Fatalf("Load before quarantine: %v", err)
	} else {
		rc.Close()
	}
	if err := ck.Quarantine(); err != nil {
		t.Fatal(err)
	}
	if rc, err := ck.Load(); err != nil || rc != nil {
		t.Fatalf("quarantined checkpoint still loads: rc=%v err=%v", rc, err)
	}
	if quarantineCount(t, st) != 1 {
		t.Fatal("checkpoint not parked in the quarantine directory")
	}
}

// TestGCTemp: orphaned write scratch is swept, quarantined artifacts
// and live entries are not.
func TestGCTemp(t *testing.T) {
	st := open(t)
	spec := smallSpec()
	res, err := campaign.Execute(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(spec, res); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(st.Dir(), spec.Key()[:2])
	for _, name := range []string{".put-123", ".ckpt-456", "stale.tmp"} {
		if err := os.WriteFile(filepath.Join(sub, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	qdir := filepath.Join(st.Dir(), store.QuarantineDir)
	os.MkdirAll(qdir, 0o755)
	if err := os.WriteFile(filepath.Join(qdir, ".put-evidence"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := st.GCTemp(); n != 3 {
		t.Fatalf("GCTemp removed %d, want 3", n)
	}
	if _, _, ok := st.Get(spec); !ok {
		t.Fatal("GCTemp damaged a live entry")
	}
	if quarantineCount(t, st) != 1 {
		t.Fatal("GCTemp swept quarantined evidence")
	}
	if n := st.GCTemp(); n != 0 {
		t.Fatalf("second GCTemp removed %d, want 0", n)
	}
}
