package store

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Checkpoint is the handle for one job's checkpoint blob — the
// resumable-exploration side of the store. A long-running job
// periodically persists an explore snapshot under its content key
// (DIR/checkpoints/<kk>/<key>.ckpt, atomic temp-file+rename like
// verdict entries); a rerun of the same spec finds it and resumes
// instead of restarting, and the final verdict is byte-identical to an
// uninterrupted run. A checkpoint is scratch, not truth: once the
// job's verdict entry exists the checkpoint is dead weight, deleted on
// completion and garbage-collected (GCCheckpoints) if a crash orphaned
// it.
//
// Checkpoint implements explore.Checkpointer (Load/Save) plus Delete;
// obtain it from Store.Checkpoint.
type Checkpoint struct {
	path string
}

// Checkpoint returns the checkpoint handle for a content key.
func (st *Store) Checkpoint(key string) *Checkpoint {
	return &Checkpoint{path: st.checkpointPath(key)}
}

func (st *Store) checkpointPath(key string) string {
	kk := "xx"
	if len(key) >= 2 {
		kk = key[:2]
	}
	return filepath.Join(st.dir, "checkpoints", kk, key+".ckpt")
}

// Load opens the stored snapshot; (nil, nil) when none exists.
// Corruption is the explorer's problem to reject (it checksums the
// stream); Load just hands over the bytes.
func (c *Checkpoint) Load() (io.ReadCloser, error) {
	f, err := os.Open(c.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	return f, err
}

// Save persists a snapshot atomically: write streams into a temp file
// in the same directory, which is renamed over the previous checkpoint
// only after a successful write — a crash mid-Save leaves the previous
// checkpoint intact, and a reader never observes a torn file.
func (c *Checkpoint) Save(write func(w io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(c.path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), ".ckpt-*")
	if err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Delete removes the checkpoint (idempotent; called when the job's
// verdict is persisted).
func (c *Checkpoint) Delete() error {
	err := os.Remove(c.path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// GCCheckpoints removes orphaned checkpoint blobs: snapshots whose
// job already has a verdict entry (the completion-time Delete crashed
// or another process finished the job), plus abandoned temp files.
// Returns the number of files removed. Safe to run concurrently with
// live jobs: only keys with a persisted verdict are touched.
func (st *Store) GCCheckpoints() int {
	removed := 0
	root := filepath.Join(st.dir, "checkpoints")
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if strings.HasPrefix(base, ".ckpt-") {
			// Abandoned temp file from a crashed Save.
			if os.Remove(path) == nil {
				removed++
			}
			return nil
		}
		key, ok := strings.CutSuffix(base, ".ckpt")
		if !ok {
			return nil
		}
		if _, err := os.Stat(st.path(key)); err == nil {
			if os.Remove(path) == nil {
				removed++
			}
		}
		return nil
	})
	return removed
}
