package store

import (
	"context"
	"errors"
	"io"
	"io/fs"
	"path/filepath"

	"repro/internal/chaos"
)

// Checkpoint is the handle for one job's checkpoint blob — the
// resumable-exploration side of the store. A long-running job
// periodically persists an explore snapshot under its content key
// (DIR/checkpoints/<kk>/<key>.ckpt, atomic temp-file+rename like
// verdict entries); a rerun of the same spec finds it and resumes
// instead of restarting, and the final verdict is byte-identical to an
// uninterrupted run. Checkpoints are plain file blobs in both store
// engines — they are scratch with exactly one live version per key,
// so the log engine's append-and-supersede machinery would buy them
// nothing. A checkpoint is not truth: once the job's verdict entry
// exists the checkpoint is dead weight, deleted on completion,
// garbage-collected (GCCheckpoints) if a crash orphaned it, and
// quarantined (Quarantine) if the explorer rejects its bytes.
//
// Checkpoint implements explore.Checkpointer (Load/Save) plus Delete
// and Quarantine; obtain it from Interface.Checkpoint.
type Checkpoint struct {
	b    *base
	path string
}

// Checkpoint returns the checkpoint handle for a content key.
func (b *base) Checkpoint(key string) *Checkpoint {
	return &Checkpoint{b: b, path: b.checkpointPath(key)}
}

func (b *base) checkpointPath(key string) string {
	kk := "xx"
	if len(key) >= 2 {
		kk = key[:2]
	}
	return filepath.Join(b.dir, "checkpoints", kk, key+".ckpt")
}

// Load opens the stored snapshot; (nil, nil) when none exists.
// Transient open failures are retried; corruption is the explorer's
// problem to reject (it checksums the stream), at which point it
// calls Quarantine and restarts from scratch.
func (c *Checkpoint) Load() (io.ReadCloser, error) {
	var f chaos.File
	err := chaos.Retry(context.Background(), c.b.Retry, func() error {
		var oerr error
		f, oerr = c.b.fs.Open(c.path)
		if oerr != nil && errors.Is(oerr, fs.ErrNotExist) {
			f = nil
			return nil
		}
		return oerr
	})
	if err != nil {
		return nil, err
	}
	if f == nil {
		return nil, nil
	}
	return f, nil
}

// Save persists a snapshot atomically: write streams into a temp file
// in the same directory, which is fsynced and renamed over the
// previous checkpoint only after a successful write — a crash or
// fault mid-Save leaves the previous checkpoint intact, and a reader
// never observes a torn file. Transient failures retry the whole
// write (the write callback must be restartable, which snapshot
// serialization is: it reads current explorer state).
func (c *Checkpoint) Save(write func(w io.Writer) error) error {
	return chaos.Retry(context.Background(), c.b.Retry, func() error {
		return c.saveOnce(write)
	})
}

func (c *Checkpoint) saveOnce(write func(w io.Writer) error) error {
	if err := c.b.fs.MkdirAll(filepath.Dir(c.path), 0o755); err != nil {
		return err
	}
	tmp, err := c.b.fs.CreateTemp(filepath.Dir(c.path), ".ckpt-*")
	if err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		c.b.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		c.b.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		c.b.fs.Remove(tmp.Name())
		return err
	}
	if err := c.b.fs.Rename(tmp.Name(), c.path); err != nil {
		c.b.fs.Remove(tmp.Name())
		return err
	}
	return nil
}

// Delete removes the checkpoint (idempotent; called when the job's
// verdict is persisted).
func (c *Checkpoint) Delete() error {
	err := c.b.fs.Remove(c.path)
	if err != nil && errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// Quarantine moves a checkpoint the explorer rejected as corrupt into
// the store's quarantine directory; the next run starts from scratch
// and converges to the same verdict. Idempotent and best-effort.
func (c *Checkpoint) Quarantine() error {
	if _, err := c.b.fs.Stat(c.path); err != nil {
		return nil // already gone
	}
	c.b.quarantine(c.path, "checkpoint rejected by explorer")
	return nil
}
