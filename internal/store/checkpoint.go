package store

import (
	"context"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/chaos"
)

// Checkpoint is the handle for one job's checkpoint blob — the
// resumable-exploration side of the store. A long-running job
// periodically persists an explore snapshot under its content key
// (DIR/checkpoints/<kk>/<key>.ckpt, atomic temp-file+rename like
// verdict entries); a rerun of the same spec finds it and resumes
// instead of restarting, and the final verdict is byte-identical to an
// uninterrupted run. A checkpoint is scratch, not truth: once the
// job's verdict entry exists the checkpoint is dead weight, deleted on
// completion, garbage-collected (GCCheckpoints) if a crash orphaned
// it, and quarantined (Quarantine) if the explorer rejects its bytes.
//
// Checkpoint implements explore.Checkpointer (Load/Save) plus Delete
// and Quarantine; obtain it from Store.Checkpoint.
type Checkpoint struct {
	st   *Store
	path string
}

// Checkpoint returns the checkpoint handle for a content key.
func (st *Store) Checkpoint(key string) *Checkpoint {
	return &Checkpoint{st: st, path: st.checkpointPath(key)}
}

func (st *Store) checkpointPath(key string) string {
	kk := "xx"
	if len(key) >= 2 {
		kk = key[:2]
	}
	return filepath.Join(st.dir, "checkpoints", kk, key+".ckpt")
}

// Load opens the stored snapshot; (nil, nil) when none exists.
// Transient open failures are retried; corruption is the explorer's
// problem to reject (it checksums the stream), at which point it
// calls Quarantine and restarts from scratch.
func (c *Checkpoint) Load() (io.ReadCloser, error) {
	var f chaos.File
	err := chaos.Retry(context.Background(), c.st.Retry, func() error {
		var oerr error
		f, oerr = c.st.fs.Open(c.path)
		if oerr != nil && errors.Is(oerr, fs.ErrNotExist) {
			f = nil
			return nil
		}
		return oerr
	})
	if err != nil {
		return nil, err
	}
	if f == nil {
		return nil, nil
	}
	return f, nil
}

// Save persists a snapshot atomically: write streams into a temp file
// in the same directory, which is fsynced and renamed over the
// previous checkpoint only after a successful write — a crash or
// fault mid-Save leaves the previous checkpoint intact, and a reader
// never observes a torn file. Transient failures retry the whole
// write (the write callback must be restartable, which snapshot
// serialization is: it reads current explorer state).
func (c *Checkpoint) Save(write func(w io.Writer) error) error {
	return chaos.Retry(context.Background(), c.st.Retry, func() error {
		return c.saveOnce(write)
	})
}

func (c *Checkpoint) saveOnce(write func(w io.Writer) error) error {
	if err := c.st.fs.MkdirAll(filepath.Dir(c.path), 0o755); err != nil {
		return err
	}
	tmp, err := c.st.fs.CreateTemp(filepath.Dir(c.path), ".ckpt-*")
	if err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		c.st.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		c.st.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		c.st.fs.Remove(tmp.Name())
		return err
	}
	if err := c.st.fs.Rename(tmp.Name(), c.path); err != nil {
		c.st.fs.Remove(tmp.Name())
		return err
	}
	return nil
}

// Delete removes the checkpoint (idempotent; called when the job's
// verdict is persisted).
func (c *Checkpoint) Delete() error {
	err := c.st.fs.Remove(c.path)
	if err != nil && errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// Quarantine moves a checkpoint the explorer rejected as corrupt into
// the store's quarantine directory; the next run starts from scratch
// and converges to the same verdict. Idempotent and best-effort.
func (c *Checkpoint) Quarantine() error {
	if _, err := c.st.fs.Stat(c.path); err != nil {
		return nil // already gone
	}
	c.st.quarantine(c.path, "checkpoint rejected by explorer")
	return nil
}

// GCCheckpoints removes orphaned checkpoint blobs: snapshots whose
// job already has a verdict entry (the completion-time Delete crashed
// or another process finished the job), plus abandoned temp files.
// Returns the number of files removed. Safe to run concurrently with
// live jobs: only keys with a persisted verdict are touched.
func (st *Store) GCCheckpoints() int {
	removed := 0
	root := filepath.Join(st.dir, "checkpoints")
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if strings.HasPrefix(base, ".ckpt-") {
			// Abandoned temp file from a crashed Save.
			if st.fs.Remove(path) == nil {
				removed++
			}
			return nil
		}
		key, ok := strings.CutSuffix(base, ".ckpt")
		if !ok {
			return nil
		}
		if _, err := os.Stat(st.path(key)); err == nil {
			if st.fs.Remove(path) == nil {
				removed++
			}
		}
		return nil
	})
	return removed
}
