package store_test

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/store"
)

func payload(ck *store.Checkpoint, t *testing.T, data string) {
	t.Helper()
	err := ck.Save(func(w io.Writer) error {
		_, err := io.WriteString(w, data)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func readBack(t *testing.T, ck *store.Checkpoint) string {
	t.Helper()
	r, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		return ""
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestCheckpointRoundTrip: Save/Load/Delete, including the
// no-checkpoint and overwrite cases.
func TestCheckpointRoundTrip(t *testing.T) {
	st := open(t)
	ck := st.Checkpoint(strings.Repeat("ab", 32))
	if r, err := ck.Load(); err != nil || r != nil {
		t.Fatalf("Load on empty store: %v, %v", r, err)
	}
	payload(ck, t, "snapshot-1")
	if got := readBack(t, ck); got != "snapshot-1" {
		t.Fatalf("got %q", got)
	}
	payload(ck, t, "snapshot-2 (newer)")
	if got := readBack(t, ck); got != "snapshot-2 (newer)" {
		t.Fatalf("got %q after overwrite", got)
	}
	if err := ck.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := ck.Delete(); err != nil {
		t.Fatalf("Delete is not idempotent: %v", err)
	}
	if r, _ := ck.Load(); r != nil {
		r.Close()
		t.Fatal("checkpoint survives Delete")
	}
}

// TestCheckpointSaveFailureKeepsPrevious: a Save whose writer fails
// must leave the previous snapshot untouched (the atomicity contract
// the explorer's crash-safety rests on).
func TestCheckpointSaveFailureKeepsPrevious(t *testing.T) {
	st := open(t)
	ck := st.Checkpoint(strings.Repeat("cd", 32))
	payload(ck, t, "good")
	err := ck.Save(func(w io.Writer) error {
		io.WriteString(w, "half a snapsh")
		return io.ErrUnexpectedEOF
	})
	if err == nil {
		t.Fatal("failed write reported success")
	}
	if got := readBack(t, ck); got != "good" {
		t.Fatalf("previous snapshot clobbered: %q", got)
	}
}

// TestGCCheckpoints: checkpoints whose job has a persisted verdict are
// orphans and get collected; live ones (no verdict yet) survive, as do
// abandoned Save temp files (removed).
func TestGCCheckpoints(t *testing.T) {
	st := open(t)
	doneSpec := smallSpec()
	res, err := campaign.Execute(doneSpec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(doneSpec, res); err != nil {
		t.Fatal(err)
	}
	orphan := st.Checkpoint(doneSpec.Key())
	payload(orphan, t, "orphaned: the verdict exists")

	liveKey := strings.Repeat("77", 32)
	live := st.Checkpoint(liveKey)
	payload(live, t, "still running")

	// An abandoned temp file from a crashed Save.
	tmpDir := filepath.Join(st.Dir(), "checkpoints", "99")
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmpDir, ".ckpt-12345"), []byte("torn"), 0o600); err != nil {
		t.Fatal(err)
	}

	if n := st.GCCheckpoints(); n != 2 {
		t.Fatalf("GC removed %d files, want 2 (orphan + temp)", n)
	}
	if r, _ := orphan.Load(); r != nil {
		r.Close()
		t.Fatal("orphaned checkpoint survived GC")
	}
	if got := readBack(t, live); got != "still running" {
		t.Fatalf("live checkpoint damaged by GC: %q", got)
	}
	if n := st.GCCheckpoints(); n != 0 {
		t.Fatalf("second GC removed %d files, want 0", n)
	}
}
