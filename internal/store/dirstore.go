package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/chaos"
	"repro/internal/explore"
)

// DirStore is the one-file-per-verdict engine: entries live at
// DIR/<kk>/<key>.json, written atomically (temp file + fsync +
// same-directory rename). It is the original store implementation and
// the differential oracle the log engine is proven against. All
// methods are safe for concurrent use from multiple goroutines and
// multiple processes (atomicity comes from same-directory rename).
type DirStore struct {
	base
}

var _ Interface = (*DirStore)(nil)

// Open creates (if needed) and returns the dir-engine store rooted at
// dir, doing I/O directly against the host filesystem.
func Open(dir string) (*DirStore, error) { return OpenFS(dir, nil) }

// OpenFS is Open with an explicit filesystem (nil = the host
// filesystem); the chaos battery passes a chaos.FaultFS here.
func OpenFS(dir string, fsys chaos.FS) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty cache directory")
	}
	if fsys == nil {
		fsys = chaos.OS
	}
	st := &DirStore{base: base{dir: dir, fs: fsys, Retry: chaos.DefaultPolicy}}
	if err := chaos.Retry(context.Background(), st.Retry, func() error {
		return fsys.MkdirAll(dir, 0o755)
	}); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return st, nil
}

// Engine names the backing engine.
func (st *DirStore) Engine() string { return EngineDir }

func (st *DirStore) path(key string) string {
	return filepath.Join(st.dir, key[:2], key+".json")
}

// readEntry reads and structurally validates the entry file for a
// key: JSON must parse, the version must match and the checksum must
// cover spec+result. A missing file is (zero, false) with corrupt ==
// false; a present-but-damaged file is quarantined and reported with
// corrupt == true. A version mismatch is a legitimate miss (format
// drift), never quarantined.
func (st *DirStore) readEntry(key string) (e entry, ok, corrupt bool) {
	path := st.path(key)
	var data []byte
	err := chaos.Retry(context.Background(), st.Retry, func() error {
		var rerr error
		data, rerr = st.fs.ReadFile(path)
		return rerr
	})
	if err != nil {
		return entry{}, false, false
	}
	e, issue, reason := checkEntry(data)
	switch issue {
	case entryCorrupt:
		st.quarantine(path, reason)
		return entry{}, false, true
	case entryDrift:
		return entry{}, false, false // format drift: invalidated, not corrupt
	}
	return e, true, false
}

// Get looks the spec's verdict up. On a hit it returns the decoded
// result plus the exact stored result bytes. See Interface.Get.
func (st *DirStore) Get(spec JobSpec) (*explore.Result, []byte, bool) {
	c := spec.Canonical()
	e, ok, _ := st.readEntry(c.Key())
	if !ok {
		return nil, nil, false
	}
	return matchSpec(e, c)
}

// Put persists the result under the spec's key, atomically, and
// returns the exact result bytes written. See Interface.Put.
func (st *DirStore) Put(spec JobSpec, res *explore.Result) ([]byte, error) {
	c := spec.Canonical()
	line, raw, err := encodeEntry(c, res)
	if err != nil {
		return nil, err
	}
	path := st.path(c.Key())
	err = chaos.Retry(context.Background(), st.Retry, func() error {
		return st.writeAtomic(path, line)
	})
	if err != nil {
		st.logf("store: put %s failed: %s", c.Key()[:12], chaos.Describe(err))
		return nil, fmt.Errorf("store: %w", err)
	}
	return raw, nil
}

// GetByKey reads the entry stored under a content key directly. See
// Interface.GetByKey.
func (st *DirStore) GetByKey(key string) (JobSpec, *explore.Result, []byte, bool) {
	if len(key) < 3 {
		return JobSpec{}, nil, nil, false
	}
	e, ok, _ := st.readEntry(key)
	if !ok {
		return JobSpec{}, nil, nil, false
	}
	return matchKey(e, key)
}

// keys walks the entry tree and returns every stored key, sorted.
// Quarantine, checkpoints and campaign manifests are not entries.
func (st *DirStore) keys() []string {
	var keys []string
	skip := map[string]bool{
		filepath.Join(st.dir, QuarantineDir): true,
		filepath.Join(st.dir, "checkpoints"): true,
		filepath.Join(st.dir, campaignsDir):  true,
	}
	filepath.WalkDir(st.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if skip[path] {
				return filepath.SkipDir
			}
			return nil
		}
		base := filepath.Base(path)
		if strings.HasPrefix(base, ".") {
			return nil
		}
		if key, ok := strings.CutSuffix(base, ".json"); ok {
			keys = append(keys, key)
		}
		return nil
	})
	sort.Strings(keys)
	return keys
}

// Len counts the complete entries currently in the store (a
// diagnostic; it does not validate them).
func (st *DirStore) Len() int { return len(st.keys()) }

// Scan calls fn for every valid entry in key order. See
// Interface.Scan.
func (st *DirStore) Scan(fn func(key string, spec JobSpec, result []byte) error) error {
	for _, key := range st.keys() {
		e, ok, _ := st.readEntry(key)
		if !ok {
			continue
		}
		c, _, raw, ok := matchKey(e, key)
		if !ok {
			continue
		}
		if err := fn(key, c, raw); err != nil {
			return err
		}
	}
	return nil
}

// has reports whether a verdict entry file exists for the key (the
// checkpoint GC's existence probe; metadata-only, host filesystem).
func (st *DirStore) has(key string) bool {
	_, err := os.Stat(st.path(key))
	return err == nil
}

// GCCheckpoints removes orphaned checkpoint blobs. See
// Interface.GCCheckpoints.
func (st *DirStore) GCCheckpoints() int { return st.gcCheckpoints(st.has) }

// Compact is a no-op report on the dir engine: one file per entry
// means superseded content is overwritten in place and there is
// nothing to reclaim.
func (st *DirStore) Compact() (CompactStats, error) {
	return CompactStats{Live: st.Len()}, nil
}

// Stats describes the engine's current footprint.
func (st *DirStore) Stats() Stats {
	return Stats{Engine: EngineDir, Entries: st.Len(), Quarantined: st.Quarantined()}
}

// Close releases nothing on the dir engine (it holds no open
// handles); it exists to satisfy Interface.
func (st *DirStore) Close() error { return nil }
