package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/explore"
	"repro/internal/store"
)

// This file runs the store battery against BOTH engines through
// store.Interface: everything the dir engine promised in PRs 4–6
// (byte-identical round trips, corruption-as-miss, retried transient
// faults, GC idempotency) must hold verbatim for the log engine, and
// the two must serve bit-for-bit identical Get bytes for the same
// Puts — including across a log-engine compaction.

// forEachEngine runs the test body against a fresh store of each
// engine.
func forEachEngine(t *testing.T, body func(t *testing.T, st store.Interface)) {
	t.Helper()
	for _, engine := range []string{store.EngineDir, store.EngineLog} {
		t.Run(engine, func(t *testing.T) {
			st := openEngine(t, engine, nil)
			body(t, st)
		})
	}
}

func openEngine(t *testing.T, engine string, fsys chaos.FS) store.Interface {
	t.Helper()
	st, err := store.OpenEngine(engine, t.TempDir(), fsys)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// fakeResult fabricates a small deterministic verdict so engine tests
// do not pay for a real exploration per record.
func fakeResult(states int, truncated bool) *explore.Result {
	return &explore.Result{
		Model: "fake", Inits: 1, States: states,
		Transitions: int64(states) * 3, Depth: 2, MaxIncorrectDepth: -1,
		Truncated: truncated,
	}
}

// seedSpec makes the i-th of a family of distinct content keys.
func seedSpec(i int) store.JobSpec {
	return store.JobSpec{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "random", RandomInits: 4, Seed: int64(i + 1)}
}

// TestEngineUnknown: OpenEngine rejects engines it does not have.
func TestEngineUnknown(t *testing.T) {
	if _, err := store.OpenEngine("btree", t.TempDir(), nil); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := store.OpenEngine(store.EngineLog, "", nil); err == nil {
		t.Fatal("log engine accepted an empty directory")
	}
}

// TestEngineRoundTrip: Put → Get byte identity, alias reads, re-Put
// stability and Len — per engine.
func TestEngineRoundTrip(t *testing.T) {
	res, err := campaign.Execute(smallSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, st store.Interface) {
		spec := smallSpec()
		raw1, err := st.Put(spec, res)
		if err != nil {
			t.Fatal(err)
		}
		got, raw2, ok := st.Get(spec)
		if !ok || !bytes.Equal(raw1, raw2) {
			t.Fatal("Get bytes differ from Put bytes")
		}
		if got.Verdict() != res.Verdict() || got.States != res.States {
			t.Fatal("decoded result differs")
		}
		raw3, err := st.Put(spec, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw1, raw3) {
			t.Fatal("re-persisting the decoded result is not byte-identical")
		}
		// Alias spelling hits the same entry.
		if _, raw4, ok := st.Get(store.JobSpec{Alg: "CC2", Topo: " ring:3", Daemon: "Central", Init: "legit", Seed: 9}); !ok || !bytes.Equal(raw1, raw4) {
			t.Fatal("alias spelling missed")
		}
		if st.Len() != 1 {
			t.Fatalf("Len = %d, want 1", st.Len())
		}
		// GetByKey round trip + rejection of unknown keys.
		gotSpec, _, raw5, ok := st.GetByKey(spec.Key())
		if !ok || !bytes.Equal(raw1, raw5) || gotSpec.Key() != spec.Key() {
			t.Fatal("GetByKey did not recover the entry byte-identically")
		}
		if _, _, _, ok := st.GetByKey("deadbeef00"); ok {
			t.Fatal("unknown key served")
		}
		if _, _, _, ok := st.GetByKey(""); ok {
			t.Fatal("empty key served")
		}
	})
}

// TestEngineCampaignManifests: campaign manifests persist and list
// identically under both engines (they share the blob layer).
func TestEngineCampaignManifests(t *testing.T) {
	forEachEngine(t, func(t *testing.T, st store.Interface) {
		keys := []string{seedSpec(0).Key(), seedSpec(1).Key()}
		id := store.CampaignID(keys)
		if err := st.PutCampaign(id, keys); err != nil {
			t.Fatal(err)
		}
		got, ok := st.GetCampaign(id)
		if !ok || len(got) != 2 || got[0] != keys[0] || got[1] != keys[1] {
			t.Fatalf("manifest round trip failed: %v %v", got, ok)
		}
		if _, ok := st.GetCampaign("no-such-campaign"); ok {
			t.Fatal("unknown campaign served")
		}
		if err := st.PutCampaign("../escape", keys); err == nil {
			t.Fatal("path-escaping campaign id accepted")
		}
		if all := st.Campaigns(); len(all) != 1 || all[0] != id {
			t.Fatalf("Campaigns() = %v, want [%s]", all, id)
		}
	})
}

// TestEngineGCIdempotent: the startup hygiene pass collects debris
// once and is a no-op the second time — per engine.
func TestEngineGCIdempotent(t *testing.T) {
	res, err := campaign.Execute(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	forEachEngine(t, func(t *testing.T, st store.Interface) {
		if _, err := st.Put(smallSpec(), res); err != nil {
			t.Fatal(err)
		}
		write := func(rel, data string) {
			t.Helper()
			path := filepath.Join(st.Dir(), rel)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(data), 0o600); err != nil {
				t.Fatal(err)
			}
		}
		write(".put-1234", "torn verdict write")
		write("aa/scratch.tmp", "abandoned")
		write("checkpoints/99/.ckpt-777", "torn save")
		// The verdict above orphans this checkpoint.
		payload(st.Checkpoint(smallSpec().Key()), t, "orphan")
		// Quarantine contents are evidence; no sweep touches them.
		write(filepath.Join(store.QuarantineDir, "evidence.tmp"), "kept")

		if n := st.GCTemp(); n != 3 {
			t.Fatalf("first GCTemp removed %d, want 3", n)
		}
		if n := st.GCCheckpoints(); n != 1 {
			t.Fatalf("first GCCheckpoints removed %d, want 1", n)
		}
		if n := st.GCTemp(); n != 0 {
			t.Fatalf("second GCTemp removed %d, want 0", n)
		}
		if n := st.GCCheckpoints(); n != 0 {
			t.Fatalf("second GCCheckpoints removed %d, want 0", n)
		}
		if quarantineCount(t, st) != 1 {
			t.Fatal("GC swept quarantined evidence")
		}
		if _, _, ok := st.Get(smallSpec()); !ok {
			t.Fatal("GC damaged a live entry")
		}
	})
}

// TestEnginePutRetriesTransient: one injected ENOSPC mid-Put retries
// away under both engines; the entry lands byte-identical.
func TestEnginePutRetriesTransient(t *testing.T) {
	res, err := campaign.Execute(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{store.EngineDir, store.EngineLog} {
		t.Run(engine, func(t *testing.T) {
			ffs := chaos.NewFaultFS(nil, chaos.Faults{FailWriteAt: 2})
			st := openEngine(t, engine, ffs)
			raw, err := st.Put(smallSpec(), res)
			if err != nil {
				t.Fatalf("Put did not retry a transient fault: %v", err)
			}
			if ffs.Stats()["write"] == 0 {
				t.Fatal("fault was not injected — the test exercised nothing")
			}
			if _, raw2, ok := st.Get(smallSpec()); !ok || !bytes.Equal(raw, raw2) {
				t.Fatal("entry not byte-identical after a retried Put")
			}
		})
	}
}

// TestEngineBitFlipQuarantinedOnRead: a silently-corrupted write is
// caught at the next read — miss + quarantine, never a wrong verdict —
// and the repair Put restores the true bytes. Per engine, across five
// fault seeds so the flip lands in different structural regions
// (frame header, checksum, payload).
func TestEngineBitFlipQuarantinedOnRead(t *testing.T) {
	res, err := campaign.Execute(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{store.EngineDir, store.EngineLog} {
		t.Run(engine, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				ffs := chaos.NewFaultFS(nil, chaos.Faults{})
				st := openEngine(t, engine, ffs)
				ffs.SetFaults(chaos.Faults{Seed: seed, BitFlip: 1})
				raw, err := st.Put(smallSpec(), res)
				if err != nil {
					t.Fatalf("seed %d: silent corruption must not error the Put: %v", seed, err)
				}
				if ffs.Stats()["flip"] == 0 {
					t.Fatalf("seed %d: no flip injected", seed)
				}
				ffs.SetFaults(chaos.Faults{}) // heal: the damage is at rest now
				if _, _, ok := st.Get(smallSpec()); ok {
					t.Fatalf("seed %d: bit-flipped entry served as a hit", seed)
				}
				raw2, err := st.Put(smallSpec(), res)
				if err != nil {
					t.Fatalf("seed %d: repair Put: %v", seed, err)
				}
				if !bytes.Equal(raw, raw2) {
					t.Fatalf("seed %d: repair not byte-identical", seed)
				}
				if _, raw3, ok := st.Get(smallSpec()); !ok || !bytes.Equal(raw, raw3) {
					t.Fatalf("seed %d: healed store does not serve the true bytes", seed)
				}
			}
		})
	}
}

// TestEngineDifferentialIdentity is the cross-engine acceptance
// check: the same sequence of Puts (including superseding overwrites)
// into a dir store, a log store, and a log store that then compacts,
// must serve bit-for-bit identical Get bytes for every key — and the
// query plane must aggregate them identically.
func TestEngineDifferentialIdentity(t *testing.T) {
	dir := openEngine(t, store.EngineDir, nil)
	lg, err := store.OpenLogFS(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	lg.AutoCompact = false // compaction is the explicit second act

	const n = 12
	var keys []string
	for i := 0; i < n; i++ {
		spec := seedSpec(i)
		keys = append(keys, spec.Key())
		res := fakeResult(100+i, i%3 == 0)
		for _, st := range []store.Interface{dir, lg} {
			if _, err := st.Put(spec, res); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Supersede a third of them so compaction has garbage to drop.
	for i := 0; i < n; i += 3 {
		res := fakeResult(1000+i, false)
		for _, st := range []store.Interface{dir, lg} {
			if _, err := st.Put(seedSpec(i), res); err != nil {
				t.Fatal(err)
			}
		}
	}

	compare := func(phase string) {
		t.Helper()
		if dir.Len() != lg.Len() {
			t.Fatalf("%s: Len %d (dir) != %d (log)", phase, dir.Len(), lg.Len())
		}
		for i, key := range keys {
			specD, resD, rawD, okD := dir.GetByKey(key)
			specL, resL, rawL, okL := lg.GetByKey(key)
			if !okD || !okL {
				t.Fatalf("%s: key %d missing (dir=%v log=%v)", phase, i, okD, okL)
			}
			if !bytes.Equal(rawD, rawL) {
				t.Fatalf("%s: key %d bytes differ between engines", phase, i)
			}
			if specD.Key() != specL.Key() || resD.States != resL.States {
				t.Fatalf("%s: key %d decoded entry differs", phase, i)
			}
		}
		sumD := store.Summarize(dir, keys)
		sumL := store.Summarize(lg, keys)
		if sumD.Present != sumL.Present || sumD.Verified != sumL.Verified ||
			sumD.Bounded != sumL.Bounded || sumD.Violated != sumL.Violated ||
			sumD.PassRate != sumL.PassRate {
			t.Fatalf("%s: summaries differ: %+v vs %+v", phase, sumD, sumL)
		}
	}
	compare("pre-compaction")

	stats, err := lg.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Live != n {
		t.Fatalf("compaction kept %d live records, want %d", stats.Live, n)
	}
	if stats.BytesAfter >= stats.BytesBefore {
		t.Fatalf("compaction did not shrink the store: %d -> %d", stats.BytesBefore, stats.BytesAfter)
	}
	compare("post-compaction")

	// And across a reopen of the compacted store.
	lgDir := lg.Dir()
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	lg2, err := store.OpenLogFS(lgDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	for i, key := range keys {
		_, _, rawD, _ := dir.GetByKey(key)
		_, _, rawL, ok := lg2.GetByKey(key)
		if !ok || !bytes.Equal(rawD, rawL) {
			t.Fatalf("reopen: key %d bytes differ or missing", i)
		}
	}
	if st := lg2.Stats(); st.GarbageBytes != 0 || st.Entries != n {
		t.Fatalf("reopened compacted store reports %+v", st)
	}
}
