package store_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/explore"
	"repro/internal/store"
)

// TestStartupGCIdempotent runs the full startup hygiene pass —
// GCTemp, GCCheckpoints, GCSpill, in the order ccserve and cccheck
// invoke them — twice over the same planted debris. The first pass
// must collect everything collectable; the second must be a pure
// no-op; and neither may reach into quarantine/, whose contents are
// evidence an operator still wants.
func TestStartupGCIdempotent(t *testing.T) {
	st := open(t)
	dir := st.Dir()
	spill := t.TempDir()

	// Debris a killed process leaves behind. Store temps:
	write := func(path, data string) {
		t.Helper()
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(data), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	write(filepath.Join(dir, ".put-1234"), "torn verdict write")
	write(filepath.Join(dir, "aa", "scratch.tmp"), "abandoned")
	// An orphaned checkpoint: its job already has a verdict.
	doneSpec := smallSpec()
	res, err := campaign.Execute(doneSpec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(doneSpec, res); err != nil {
		t.Fatal(err)
	}
	payload(st.Checkpoint(doneSpec.Key()), t, "orphan")
	write(filepath.Join(dir, "checkpoints", "99", ".ckpt-777"), "torn save")
	// Spill scratch from in-flight explorations, plus a bystander file
	// the sweep must leave alone.
	write(filepath.Join(spill, "cc-frontier-123", "seg0"), "frontier segment")
	write(filepath.Join(spill, "cc-arena-456"), "cold arena")
	write(filepath.Join(spill, "unrelated.dat"), "not ours")
	// Quarantined artifacts are off-limits for every sweep, even when
	// their names match the temp patterns.
	qdir := filepath.Join(dir, store.QuarantineDir)
	write(filepath.Join(qdir, "bad-verdict.json"), "kept for diagnosis")
	write(filepath.Join(qdir, "evidence.tmp"), "kept too")

	lsQuarantine := func() []string {
		t.Helper()
		entries, err := os.ReadDir(qdir)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		return names
	}
	qBefore := lsQuarantine()

	// GCTemp runs first at startup and owns every temp pattern,
	// including .ckpt-* save temps; GCCheckpoints then collects the
	// orphaned snapshot itself.
	if n := st.GCTemp(); n != 3 {
		t.Fatalf("first GCTemp removed %d, want 3 (.put-* + *.tmp + .ckpt-*)", n)
	}
	if n := st.GCCheckpoints(); n != 1 {
		t.Fatalf("first GCCheckpoints removed %d, want 1 (the orphan)", n)
	}
	if n := explore.GCSpill(spill); n != 2 {
		t.Fatalf("first GCSpill removed %d, want 2 (frontier dir + arena file)", n)
	}

	// Second pass: the repo's startup sequence after a clean start must
	// find nothing — a sweep that keeps "collecting" would be deleting
	// live state.
	if n := st.GCTemp(); n != 0 {
		t.Fatalf("second GCTemp removed %d, want 0", n)
	}
	if n := st.GCCheckpoints(); n != 0 {
		t.Fatalf("second GCCheckpoints removed %d, want 0", n)
	}
	if n := explore.GCSpill(spill); n != 0 {
		t.Fatalf("second GCSpill removed %d, want 0", n)
	}

	if got := lsQuarantine(); len(got) != len(qBefore) {
		t.Fatalf("quarantine touched by GC: %v -> %v", qBefore, got)
	}
	if _, err := os.Stat(filepath.Join(spill, "unrelated.dat")); err != nil {
		t.Fatal("GCSpill removed a file it does not own")
	}
	// The verdict that orphaned the checkpoint is still served.
	if _, _, ok := st.Get(doneSpec); !ok {
		t.Fatal("verdict lost after GC")
	}
}
