package store

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/explore"
)

// Engine names accepted by OpenEngine and the CLIs' -store-engine
// flag.
const (
	// EngineDir is the one-file-per-verdict tree (DirStore) — the
	// original engine and the differential oracle the chaos battery
	// compares against.
	EngineDir = "dir"
	// EngineLog is the append-only segment store (LogStore).
	EngineLog = "log"
)

// Interface is the narrow store surface every consumer — campaign,
// serve, cccheck, ccbench — programs against. Both engines implement
// it with byte-identical Get/Put semantics: an entry written by one
// engine's Put is returned by its Get exactly as the other engine
// would return it, which is what lets the whole store battery run
// differentially against the two and lets operators pick the engine
// per deployment without touching verdict consumers.
//
// All methods are safe for concurrent use from multiple goroutines.
// DirStore additionally tolerates multiple processes on one root;
// LogStore assumes one writing process (the serving tier's model).
type Interface interface {
	// Engine names the backing engine (EngineDir or EngineLog).
	Engine() string
	// Dir returns the cache root.
	Dir() string
	// FS returns the filesystem the store does its I/O through.
	FS() chaos.FS
	// SetLog installs the printf-style sink that receives one line per
	// quarantined artifact and per exhausted retry.
	SetLog(fn func(format string, args ...any))

	// Get looks the spec's verdict up. On a hit it returns the decoded
	// result plus the exact stored result bytes (so cached verdicts can
	// be served byte-identically to freshly computed ones). Version
	// mismatches, spec mismatches and unreadable or corrupted entries
	// are misses, not errors; corrupted entries are additionally
	// quarantined.
	Get(spec JobSpec) (*explore.Result, []byte, bool)
	// GetByKey reads the entry stored under a content key directly —
	// the serving layer evicts completed in-memory jobs and re-hydrates
	// them from the store by their job id, which IS the key. The
	// embedded spec must canonicalize back to the key; anything else
	// reads as a miss.
	GetByKey(key string) (JobSpec, *explore.Result, []byte, bool)
	// Put persists the result under the spec's key and returns the
	// exact result bytes written (the same bytes every later Get
	// returns). Transient write failures are retried under the
	// engine's retry policy; the returned error, if any, is
	// classifiable with chaos.Classify.
	Put(spec JobSpec, res *explore.Result) ([]byte, error)
	// Scan calls fn for every valid entry in deterministic (key-
	// sorted) order — the query plane's iteration primitive. Damaged
	// entries are skipped (and quarantined, like a Get would). A
	// non-nil error from fn stops the scan and is returned.
	Scan(fn func(key string, spec JobSpec, result []byte) error) error
	// Len counts the entries currently in the store (a diagnostic; it
	// does not validate them).
	Len() int
	// Quarantined returns the number of corrupted artifacts this
	// handle has preserved in the quarantine directory.
	Quarantined() int64
	// QuarantineBytes preserves corrupted bytes that have no file of
	// their own — a damaged gossip transfer — as a specimen under the
	// quarantine directory, counted like any other quarantined
	// artifact.
	QuarantineBytes(name string, data []byte, detail string)

	// Checkpoint returns the checkpoint-blob handle for a content key
	// (the resumable-exploration side of the store).
	Checkpoint(key string) *Checkpoint

	// PutCampaign persists a campaign manifest (cell keys in expansion
	// order under the campaign's CampaignID); GetCampaign reads one
	// back and Campaigns lists the persisted ids, sorted. Manifests
	// make per-campaign summary and diff queries work offline, across
	// restarts and across processes.
	PutCampaign(id string, keys []string) error
	GetCampaign(id string) ([]string, bool)
	Campaigns() []string

	// GCTemp and GCCheckpoints are the startup hygiene sweeps: temp
	// files abandoned by a killed process, and checkpoint snapshots
	// whose job already has a verdict. Both return the number of files
	// removed and are idempotent.
	GCTemp() int
	GCCheckpoints() int

	// Compact rewrites the store down to its live entries, dropping
	// superseded and damaged records, and reports what it did. Get
	// bytes are identical before and after — compaction is a space
	// operation, never a semantic one. On DirStore (which has no
	// garbage by construction) it is a no-op report.
	Compact() (CompactStats, error)
	// Stats describes the engine's current footprint for the
	// management plane (/v1/store/stats).
	Stats() Stats
	// Close releases engine resources (open segment handles,
	// background compactions). The handle must not be used after.
	Close() error
}

// Stats is the management-plane snapshot of a store engine.
type Stats struct {
	Engine  string `json:"engine"`
	Entries int    `json:"entries"`
	// Segments, LiveBytes and GarbageBytes describe the log engine's
	// footprint; the dir engine reports zero (its granularity is one
	// file per entry and it carries no garbage).
	Segments     int   `json:"segments"`
	LiveBytes    int64 `json:"live_bytes"`
	GarbageBytes int64 `json:"garbage_bytes"`
	Compactions  int64 `json:"compactions"`
	Quarantined  int64 `json:"quarantined"`
}

// CompactStats reports one compaction.
type CompactStats struct {
	// Live is the number of entries carried into the compacted store;
	// Dropped counts superseded-at-scan or damaged records left
	// behind.
	Live    int `json:"live"`
	Dropped int `json:"dropped"`
	// BytesBefore/BytesAfter are the engine's data footprint around
	// the compaction; Segments is the number of segment files written.
	BytesBefore int64 `json:"bytes_before"`
	BytesAfter  int64 `json:"bytes_after"`
	Segments    int   `json:"segments"`
}

// OpenEngine opens the store rooted at dir under the named engine
// ("dir", "log"; "" = dir), doing I/O through fsys (nil = the host
// filesystem). This is the one constructor the CLIs' -store-engine
// flag funnels into.
func OpenEngine(engine, dir string, fsys chaos.FS) (Interface, error) {
	switch engine {
	case "", EngineDir:
		return OpenFS(dir, fsys)
	case EngineLog:
		return OpenLogFS(dir, fsys)
	default:
		return nil, fmt.Errorf("store: unknown engine %q (want %s or %s)", engine, EngineDir, EngineLog)
	}
}
