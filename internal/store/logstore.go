package store

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"

	"repro/internal/chaos"
	"repro/internal/explore"
)

// The log engine's on-disk unit is a record appended to a segment
// file under DIR/segments/<seq>.seg:
//
//	magic   [4]byte  "cclg"
//	key     [32]byte raw SHA-256 content key
//	length  uint32   payload length (little-endian)
//	sum     uint64   FNV-64a over key||payload (little-endian)
//	payload []byte   the entry JSON line — byte-identical to the
//	                 file body DirStore would write for the same Put
//
// Later records supersede earlier ones for the same key (later
// segment, or later offset within one), so an append is a complete
// overwrite semantically; compaction reclaims the superseded bytes.
// The frame checksum catches torn and bit-flipped records at the
// framing level before the entry-level checksum ever runs.
const (
	segmentsDir = "segments"
	recMagic    = "cclg"
	recHeader   = 4 + 32 + 4 + 8
	recKeyOff   = 4
	recLenOff   = 36
	recSumOff   = 40
)

// DefaultSegmentMaxBytes rotates the active segment once it grows
// past this size; compaction also packs output segments up to it.
const DefaultSegmentMaxBytes = 64 << 20

// DefaultCompactMinGarbage is the superseded-bytes floor below which
// background compaction never triggers (tiny stores are not worth
// rewriting).
const DefaultCompactMinGarbage = 1 << 20

var segNameRe = regexp.MustCompile(`^(\d{8})\.seg$`)

func segName(seq uint64) string { return fmt.Sprintf("%08d.seg", seq) }

// recSum is the frame checksum: FNV-64a over raw key then payload.
func recSum(key, payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	h.Write(payload)
	return h.Sum64()
}

// recLoc locates one record: segment sequence number, byte offset,
// total framed length.
type recLoc struct {
	seq uint64
	off int64
	n   int64
}

// LogStore is the append-only segment engine: every Put appends one
// checksummed record to the active segment and fsyncs; a sparse
// in-memory index (key → record location) is rebuilt by scanning the
// segments on open. A torn tail (crash mid-append) is silently
// dropped at the next open; mid-segment damage is quarantined as a
// specimen and the segment's remainder abandoned — the affected keys
// read as misses and are recomputed, converging back to a correct
// store exactly like the dir engine does. Compaction (explicit via
// Compact, or in the background once superseded bytes dominate)
// rewrites live records into fresh higher-numbered segments and
// deletes the old ones; a crash mid-compaction is safe because a
// later segment always wins for a key.
//
// One process writes at a time (the serving tier's model); reads are
// concurrent-safe against writes and compaction.
type LogStore struct {
	base

	// SegmentMaxBytes bounds segment files (default
	// DefaultSegmentMaxBytes); the active segment rotates past it.
	SegmentMaxBytes int64
	// AutoCompact enables background compaction after a Put once
	// superseded bytes exceed both CompactMinGarbage and the live
	// bytes. On by default; tests of explicit compaction turn it off.
	AutoCompact bool
	// CompactMinGarbage is the superseded-bytes floor for AutoCompact
	// (default DefaultCompactMinGarbage).
	CompactMinGarbage int64

	mu        sync.RWMutex
	index     map[string]recLoc
	segs      map[uint64]int64 // segment seq → byte size on disk
	nextSeq   uint64
	active    chaos.File // writable handle for the active segment (nil = none)
	activeSeq uint64
	activeOff int64

	liveBytes    int64
	garbageBytes int64
	droppedScan  int64 // records lost to torn tails / abandoned remainders at open
	compactions  int64
	compacting   bool
	compactWG    sync.WaitGroup
}

var _ Interface = (*LogStore)(nil)

// OpenLog creates (if needed) and opens the log-engine store rooted
// at dir, doing I/O directly against the host filesystem.
func OpenLog(dir string) (*LogStore, error) { return OpenLogFS(dir, nil) }

// OpenLogFS is OpenLog with an explicit filesystem (nil = the host
// filesystem). Opening scans every segment to rebuild the index;
// segment files that cannot be read after retries are skipped (their
// keys read as misses) rather than failing the open.
func OpenLogFS(dir string, fsys chaos.FS) (*LogStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty cache directory")
	}
	if fsys == nil {
		fsys = chaos.OS
	}
	st := &LogStore{
		base:              base{dir: dir, fs: fsys, Retry: chaos.DefaultPolicy},
		SegmentMaxBytes:   DefaultSegmentMaxBytes,
		AutoCompact:       true,
		CompactMinGarbage: DefaultCompactMinGarbage,
		index:             map[string]recLoc{},
		segs:              map[uint64]int64{},
	}
	if err := chaos.Retry(context.Background(), st.Retry, func() error {
		return fsys.MkdirAll(filepath.Join(dir, segmentsDir), 0o755)
	}); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st.load()
	return st, nil
}

// Engine names the backing engine.
func (st *LogStore) Engine() string { return EngineLog }

func (st *LogStore) segPath(seq uint64) string {
	return filepath.Join(st.dir, segmentsDir, segName(seq))
}

// load rebuilds the index by scanning every segment in sequence
// order. Metadata listing stays on the host filesystem (like the dir
// engine's walks); segment contents go through the chaos.FS.
func (st *LogStore) load() {
	entries, err := os.ReadDir(filepath.Join(st.dir, segmentsDir))
	if err != nil {
		return
	}
	var seqs []uint64
	for _, e := range entries {
		m := segNameRe.FindStringSubmatch(e.Name())
		if e.IsDir() || m == nil {
			continue
		}
		seq, err := strconv.ParseUint(m[1], 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		var data []byte
		err := chaos.Retry(context.Background(), st.Retry, func() error {
			var rerr error
			data, rerr = st.fs.ReadFile(st.segPath(seq))
			return rerr
		})
		if err != nil {
			st.logf("store: segment %s unreadable, skipped: %s", segName(seq), chaos.Describe(err))
			continue
		}
		st.scanSegment(seq, data)
		if seq >= st.nextSeq {
			st.nextSeq = seq + 1
		}
	}
}

// scanSegment replays one segment's records into the index. The scan
// stops at the first frame that does not check out: an incomplete
// frame at EOF is the expected artifact of a crash mid-append and is
// dropped silently; anything else (bad magic, checksum mismatch) is
// corruption — the remainder is preserved as a quarantine specimen
// and abandoned, so a good prefix still serves and the lost keys are
// recomputed on demand.
func (st *LogStore) scanSegment(seq uint64, data []byte) {
	name := segName(seq)
	size := int64(len(data))
	off := int64(0)
	for off < size {
		rem := size - off
		if rem < recHeader {
			st.droppedScan++
			break // torn header at EOF
		}
		hdr := data[off:]
		if string(hdr[:recKeyOff]) != recMagic {
			st.quarantineBytes(fmt.Sprintf("%s@%d", name, off), data[off:], "bad record magic")
			st.droppedScan++
			break
		}
		payloadLen := int64(binary.LittleEndian.Uint32(hdr[recLenOff:recSumOff]))
		total := recHeader + payloadLen
		if rem < total {
			st.droppedScan++
			break // torn payload at EOF
		}
		key := hdr[recKeyOff : recKeyOff+32]
		payload := data[off+recHeader : off+total]
		if recSum(key, payload) != binary.LittleEndian.Uint64(hdr[recSumOff:recHeader]) {
			st.quarantineBytes(fmt.Sprintf("%s@%d", name, off), data[off:], "record checksum mismatch")
			st.droppedScan++
			break
		}
		khex := hex.EncodeToString(key)
		loc := recLoc{seq: seq, off: off, n: total}
		if prev, ok := st.index[khex]; ok {
			st.garbageBytes += prev.n
			st.liveBytes -= prev.n
		}
		st.index[khex] = loc
		st.liveBytes += total
		off += total
	}
	st.segs[seq] = size
	if off < size {
		st.garbageBytes += size - off
	}
}

// ensureActiveLocked opens a fresh active segment when none is open.
// chaos.FS has no read-write Open, so the writable handle comes from
// CreateTemp and the file is immediately renamed to its final segment
// name — the descriptor survives the rename, the on-disk name is
// durable from the first byte, and a crash leaves a normal (possibly
// torn-tailed) segment rather than a temp file for GCTemp to sweep.
func (st *LogStore) ensureActiveLocked() error {
	if st.active != nil {
		return nil
	}
	segDir := filepath.Join(st.dir, segmentsDir)
	if err := st.fs.MkdirAll(segDir, 0o755); err != nil {
		return err
	}
	tmp, err := st.fs.CreateTemp(segDir, ".seg-*")
	if err != nil {
		return err
	}
	if err := st.fs.Rename(tmp.Name(), st.segPath(st.nextSeq)); err != nil {
		tmp.Close()
		st.fs.Remove(tmp.Name())
		return err
	}
	st.active = tmp
	st.activeSeq = st.nextSeq
	st.activeOff = 0
	st.segs[st.activeSeq] = 0
	st.nextSeq++
	return nil
}

// encodeRecord frames an entry line under its raw key.
func encodeRecord(keyRaw, payload []byte) []byte {
	rec := make([]byte, recHeader+len(payload))
	copy(rec, recMagic)
	copy(rec[recKeyOff:], keyRaw)
	binary.LittleEndian.PutUint32(rec[recLenOff:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[recSumOff:], recSum(keyRaw, payload))
	copy(rec[recHeader:], payload)
	return rec
}

// Put appends one record to the active segment and fsyncs. A failed
// attempt retries at the same offset, so a torn prefix from an
// injected fault is overwritten by the retry (and dropped by the next
// open if the process dies first). See Interface.Put.
func (st *LogStore) Put(spec JobSpec, res *explore.Result) ([]byte, error) {
	c := spec.Canonical()
	line, raw, err := encodeEntry(c, res)
	if err != nil {
		return nil, err
	}
	khex := c.Key()
	keyRaw, err := hex.DecodeString(khex)
	if err != nil || len(keyRaw) != 32 {
		return nil, fmt.Errorf("store: malformed content key %q", khex)
	}
	rec := encodeRecord(keyRaw, line)

	st.mu.Lock()
	err = chaos.Retry(context.Background(), st.Retry, func() error {
		if err := st.ensureActiveLocked(); err != nil {
			return err
		}
		if _, err := st.active.WriteAt(rec, st.activeOff); err != nil {
			return err
		}
		return st.active.Sync()
	})
	if err != nil {
		st.mu.Unlock()
		st.logf("store: put %s failed: %s", khex[:12], chaos.Describe(err))
		return nil, fmt.Errorf("store: %w", err)
	}
	loc := recLoc{seq: st.activeSeq, off: st.activeOff, n: int64(len(rec))}
	st.activeOff += loc.n
	st.segs[st.activeSeq] = st.activeOff
	if prev, ok := st.index[khex]; ok {
		st.garbageBytes += prev.n
		st.liveBytes -= prev.n
	}
	st.index[khex] = loc
	st.liveBytes += loc.n
	if st.activeOff >= st.SegmentMaxBytes {
		st.active.Close()
		st.active = nil
	}
	if st.AutoCompact && !st.compacting &&
		st.garbageBytes >= st.CompactMinGarbage && st.garbageBytes > st.liveBytes {
		st.compacting = true
		st.compactWG.Add(1)
		go st.backgroundCompact()
	}
	st.mu.Unlock()
	return raw, nil
}

// readRecord reads one framed record back from its segment.
func (st *LogStore) readRecord(loc recLoc) ([]byte, error) {
	buf := make([]byte, loc.n)
	err := chaos.Retry(context.Background(), st.Retry, func() error {
		f, err := st.fs.Open(st.segPath(loc.seq))
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = f.ReadAt(buf, loc.off)
		return err
	})
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// checkRecord validates a framed record against the key it was
// indexed under; "" means valid, anything else names the damage.
func checkRecord(khex string, rec []byte) (payload []byte, reason string) {
	if int64(len(rec)) < recHeader {
		return nil, "record shorter than header"
	}
	if string(rec[:recKeyOff]) != recMagic {
		return nil, "bad record magic"
	}
	key := rec[recKeyOff : recKeyOff+32]
	if hex.EncodeToString(key) != khex {
		return nil, "record key mismatch"
	}
	payloadLen := int64(binary.LittleEndian.Uint32(rec[recLenOff:recSumOff]))
	if recHeader+payloadLen != int64(len(rec)) {
		return nil, "record length mismatch"
	}
	payload = rec[recHeader:]
	if recSum(key, payload) != binary.LittleEndian.Uint64(rec[recSumOff:recHeader]) {
		return nil, "record checksum mismatch"
	}
	return payload, ""
}

// evict drops a damaged record from the index (if it still points at
// loc) and preserves the bytes as a quarantine specimen; the key
// reads as a miss and the next Put repairs it.
func (st *LogStore) evict(khex string, loc recLoc, specimen []byte, reason string) {
	st.mu.Lock()
	if cur, ok := st.index[khex]; ok && cur == loc {
		delete(st.index, khex)
		st.liveBytes -= loc.n
		st.garbageBytes += loc.n
	}
	st.mu.Unlock()
	st.quarantineBytes(fmt.Sprintf("%s@%d", segName(loc.seq), loc.off), specimen, reason)
}

// fetch resolves a key through the index to a validated entry.
// Damage at the frame or entry level evicts and quarantines; version
// drift and read failures are plain misses.
func (st *LogStore) fetch(khex string) (entry, bool) {
	st.mu.RLock()
	loc, ok := st.index[khex]
	st.mu.RUnlock()
	if !ok {
		return entry{}, false
	}
	rec, err := st.readRecord(loc)
	if err != nil {
		return entry{}, false
	}
	payload, reason := checkRecord(khex, rec)
	if reason != "" {
		st.evict(khex, loc, rec, reason)
		return entry{}, false
	}
	e, issue, reason := checkEntry(payload)
	switch issue {
	case entryCorrupt:
		st.evict(khex, loc, rec, reason)
		return entry{}, false
	case entryDrift:
		return entry{}, false // format drift: invalidated, not corrupt
	}
	return e, true
}

// Get looks the spec's verdict up. See Interface.Get.
func (st *LogStore) Get(spec JobSpec) (*explore.Result, []byte, bool) {
	c := spec.Canonical()
	e, ok := st.fetch(c.Key())
	if !ok {
		return nil, nil, false
	}
	return matchSpec(e, c)
}

// GetByKey reads the entry stored under a content key directly. See
// Interface.GetByKey.
func (st *LogStore) GetByKey(key string) (JobSpec, *explore.Result, []byte, bool) {
	e, ok := st.fetch(key)
	if !ok {
		return JobSpec{}, nil, nil, false
	}
	return matchKey(e, key)
}

// sortedKeys snapshots the index keys in sorted order.
func (st *LogStore) sortedKeys() []string {
	st.mu.RLock()
	keys := make([]string, 0, len(st.index))
	for k := range st.index {
		keys = append(keys, k)
	}
	st.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Scan calls fn for every valid entry in key order. See
// Interface.Scan.
func (st *LogStore) Scan(fn func(key string, spec JobSpec, result []byte) error) error {
	for _, khex := range st.sortedKeys() {
		e, ok := st.fetch(khex)
		if !ok {
			continue
		}
		c, _, raw, ok := matchKey(e, khex)
		if !ok {
			continue
		}
		if err := fn(khex, c, raw); err != nil {
			return err
		}
	}
	return nil
}

// Len counts the indexed entries.
func (st *LogStore) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.index)
}

// has reports whether the key is indexed (the checkpoint GC's
// existence probe).
func (st *LogStore) has(key string) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	_, ok := st.index[key]
	return ok
}

// GCCheckpoints removes orphaned checkpoint blobs. See
// Interface.GCCheckpoints.
func (st *LogStore) GCCheckpoints() int { return st.gcCheckpoints(st.has) }

func (st *LogStore) backgroundCompact() {
	defer st.compactWG.Done()
	if _, err := st.compact(); err != nil {
		st.logf("store: background compaction failed: %s", chaos.Describe(err))
	}
	st.mu.Lock()
	st.compacting = false
	st.mu.Unlock()
}

// Compact rewrites live records into fresh segments and deletes the
// old ones. Concurrent with reads; a compaction already in flight
// makes this call a no-op report. See Interface.Compact.
func (st *LogStore) Compact() (CompactStats, error) {
	st.mu.Lock()
	if st.compacting {
		st.mu.Unlock()
		return CompactStats{}, nil
	}
	st.compacting = true
	st.mu.Unlock()
	stats, err := st.compact()
	st.mu.Lock()
	st.compacting = false
	st.mu.Unlock()
	return stats, err
}

// compact holds the write lock for the duration: readers drain first,
// Puts queue behind it. Every surviving record is re-validated end to
// end and copied byte-for-byte, so Get bytes are identical across the
// compaction; superseded records are simply not copied, and damaged
// ones are quarantined here instead of at their next read. Output
// segments are written atomically (temp + fsync + rename) at
// sequence numbers above every existing segment, so a crash anywhere
// in between leaves a store that opens correctly: for any key, the
// newest intact record still wins.
func (st *LogStore) compact() (CompactStats, error) {
	st.mu.Lock()
	defer st.mu.Unlock()

	var before int64
	for _, size := range st.segs {
		before += size
	}
	if st.active != nil {
		st.active.Close()
		st.active = nil
	}

	keys := make([]string, 0, len(st.index))
	for k := range st.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	stats := CompactStats{BytesBefore: before}
	type outSeg struct {
		seq uint64
		buf []byte
	}
	var (
		out      []outSeg
		cur      []byte
		newIndex = map[string]recLoc{}
		live     int64
		seq      = st.nextSeq
	)
	flush := func() {
		if len(cur) > 0 {
			out = append(out, outSeg{seq: seq, buf: cur})
			seq++
			cur = nil
		}
	}
	for _, khex := range keys {
		loc := st.index[khex]
		rec, err := st.readRecord(loc)
		if err != nil {
			stats.Dropped++ // unreadable even with retries: not worth failing the compaction
			continue
		}
		payload, reason := checkRecord(khex, rec)
		var issue entryIssue
		if reason == "" {
			_, issue, reason = checkEntry(payload)
		} else {
			issue = entryCorrupt
		}
		switch issue {
		case entryCorrupt:
			st.quarantineBytes(fmt.Sprintf("%s@%d", segName(loc.seq), loc.off), rec, reason)
			stats.Dropped++
			continue
		case entryDrift:
			stats.Dropped++ // stale format: a permanent miss, dropped
			continue
		}
		if int64(len(cur))+loc.n > st.SegmentMaxBytes {
			flush()
		}
		newIndex[khex] = recLoc{seq: seq, off: int64(len(cur)), n: loc.n}
		cur = append(cur, rec...)
		live += loc.n
		stats.Live++
	}
	flush()

	written := make([]uint64, 0, len(out))
	for _, o := range out {
		err := chaos.Retry(context.Background(), st.Retry, func() error {
			return st.writeAtomic(st.segPath(o.seq), o.buf)
		})
		if err != nil {
			// Abort: remove what landed (best-effort — a leftover new
			// segment only duplicates records the old segments still
			// hold, and the newer sequence number wins identically) and
			// keep serving from the old segments.
			for _, w := range written {
				st.fs.Remove(st.segPath(w))
			}
			st.nextSeq = seq // never reuse an attempted sequence number
			return CompactStats{}, fmt.Errorf("store: compact: %w", err)
		}
		written = append(written, o.seq)
	}

	for old := range st.segs {
		st.fs.Remove(st.segPath(old)) // best-effort: superseded by higher seqs
	}
	st.segs = map[uint64]int64{}
	for _, o := range out {
		st.segs[o.seq] = int64(len(o.buf))
	}
	st.index = newIndex
	st.liveBytes = live
	st.garbageBytes = 0
	st.nextSeq = seq
	st.compactions++
	stats.BytesAfter = live
	stats.Segments = len(out)
	st.logf("store: compacted %d→%d bytes, %d live, %d dropped, %d segments",
		before, live, stats.Live, stats.Dropped, len(out))
	return stats, nil
}

// Stats describes the engine's current footprint.
func (st *LogStore) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return Stats{
		Engine:       EngineLog,
		Entries:      len(st.index),
		Segments:     len(st.segs),
		LiveBytes:    st.liveBytes,
		GarbageBytes: st.garbageBytes,
		Compactions:  st.compactions,
		Quarantined:  st.Quarantined(),
	}
}

// Close waits for any background compaction and releases the active
// segment handle. The handle must not be used after.
func (st *LogStore) Close() error {
	st.compactWG.Wait()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.active != nil {
		err := st.active.Close()
		st.active = nil
		return err
	}
	return nil
}
