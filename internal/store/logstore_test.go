package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/store"
)

// Log-engine structural tests: segment framing, torn tails,
// mid-segment corruption, rotation, and compaction. The cross-engine
// semantics live in engine_test.go; this file pokes at the segment
// files directly.

func openLog(t *testing.T) *store.LogStore {
	t.Helper()
	st, err := store.OpenLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.AutoCompact = false
	t.Cleanup(func() { st.Close() })
	return st
}

// segFiles lists the segment files on disk, sorted by name.
func segFiles(t *testing.T, st *store.LogStore) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(st.Dir(), "segments"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	return names
}

// fillLog puts n fabricated verdicts and returns their keys and raw
// bytes.
func fillLog(t *testing.T, st *store.LogStore, n int) ([]string, map[string][]byte) {
	t.Helper()
	keys := make([]string, n)
	raws := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		spec := seedSpec(i)
		raw, err := st.Put(spec, fakeResult(100+i, false))
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = spec.Key()
		raws[spec.Key()] = raw
	}
	return keys, raws
}

// TestLogTornTailDroppedOnReopen: a crash mid-append leaves a partial
// frame at the segment tail; reopening drops it silently (no
// quarantine — it is the expected crash artifact), serves every intact
// record, and the lost key recomputes via a fresh Put.
func TestLogTornTailDroppedOnReopen(t *testing.T) {
	st := openLog(t)
	keys, raws := fillLog(t, st, 3)
	dir := st.Dir()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: keep the first two records plus half of the third.
	seg := filepath.Join(dir, "segments", segFiles(t, st)[0])
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(data) / 3
	cut := 2*recLen + recLen/2
	if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := store.OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("Len = %d after torn tail, want 2", st2.Len())
	}
	for _, key := range keys[:2] {
		if _, _, raw, ok := st2.GetByKey(key); !ok || !bytes.Equal(raw, raws[key]) {
			t.Fatalf("intact record %s lost or mutated", key[:8])
		}
	}
	if _, _, _, ok := st2.GetByKey(keys[2]); ok {
		t.Fatal("torn record served")
	}
	if st2.Quarantined() != 0 {
		t.Fatal("a torn tail is a crash artifact, not corruption — nothing to quarantine")
	}
	// The key recomputes: a fresh Put serves the same bytes as before.
	raw, err := st2.Put(seedSpec(2), fakeResult(102, false))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raws[keys[2]]) {
		t.Fatal("repaired record bytes differ")
	}
}

// TestLogMidSegmentCorruptionQuarantined: damage before the tail is
// corruption, not a crash artifact — the scan keeps the good prefix,
// quarantines the remainder as a specimen, and the lost keys miss.
func TestLogMidSegmentCorruptionQuarantined(t *testing.T) {
	st := openLog(t)
	keys, raws := fillLog(t, st, 3)
	dir := st.Dir()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "segments", segFiles(t, st)[0])
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the second record's payload.
	recLen := len(data) / 3
	data[recLen+recLen/2] ^= 0x10
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := store.OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 1 {
		t.Fatalf("Len = %d after mid-segment damage, want 1 (the good prefix)", st2.Len())
	}
	if _, _, raw, ok := st2.GetByKey(keys[0]); !ok || !bytes.Equal(raw, raws[keys[0]]) {
		t.Fatal("record before the damage lost")
	}
	for _, key := range keys[1:] {
		if _, _, _, ok := st2.GetByKey(key); ok {
			t.Fatalf("record at/after the damage served: %s", key[:8])
		}
	}
	if st2.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1 specimen", st2.Quarantined())
	}
	// The specimen names the segment and offset it came from.
	qdir := filepath.Join(dir, store.QuarantineDir)
	entries, err := os.ReadDir(qdir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("quarantine dir: %v %v", entries, err)
	}
	if !strings.Contains(entries[0].Name(), ".seg@") {
		t.Fatalf("specimen %q does not name its segment@offset", entries[0].Name())
	}
}

// TestLogSegmentRotation: a tiny segment cap produces many segments;
// reopen indexes them all and later segments supersede earlier ones.
func TestLogSegmentRotation(t *testing.T) {
	st := openLog(t)
	st.SegmentMaxBytes = 1 // rotate after every record
	keys, raws := fillLog(t, st, 5)
	// Overwrite key 0 so a later segment supersedes an earlier one.
	raw2, err := st.Put(seedSpec(0), fakeResult(999, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(segFiles(t, st)) != 6 {
		t.Fatalf("%d segments, want 6", len(segFiles(t, st)))
	}
	dir := st.Dir()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 5 {
		t.Fatalf("Len = %d, want 5", st2.Len())
	}
	if _, _, raw, ok := st2.GetByKey(keys[0]); !ok || !bytes.Equal(raw, raw2) {
		t.Fatal("the superseding record did not win across reopen")
	}
	for _, key := range keys[1:] {
		if _, _, raw, ok := st2.GetByKey(key); !ok || !bytes.Equal(raw, raws[key]) {
			t.Fatalf("record %s lost across rotation+reopen", key[:8])
		}
	}
	if st2.Stats().GarbageBytes == 0 {
		t.Fatal("superseded record not accounted as garbage")
	}
}

// TestLogCompactionPacksAndDeletes: compaction rewrites only live
// records, deletes every old segment, zeroes garbage, and a reopen of
// the compacted store serves identical bytes.
func TestLogCompactionPacksAndDeletes(t *testing.T) {
	st := openLog(t)
	st.SegmentMaxBytes = 1
	keys, raws := fillLog(t, st, 4)
	for i := 0; i < 4; i++ { // supersede everything once
		if _, err := st.Put(seedSpec(i), fakeResult(100+i, false)); err != nil {
			t.Fatal(err)
		}
	}
	before := segFiles(t, st)
	st.SegmentMaxBytes = store.DefaultSegmentMaxBytes // pack into one output
	stats, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Live != 4 || stats.Segments != 1 {
		t.Fatalf("CompactStats = %+v, want 4 live in 1 segment", stats)
	}
	after := segFiles(t, st)
	if len(after) != 1 {
		t.Fatalf("%d segments after compaction, want 1 (before: %v)", len(after), before)
	}
	if st.Stats().GarbageBytes != 0 {
		t.Fatal("garbage not zeroed by compaction")
	}
	for _, key := range keys {
		if _, _, raw, ok := st.GetByKey(key); !ok || !bytes.Equal(raw, raws[key]) {
			t.Fatalf("record %s lost or mutated by compaction", key[:8])
		}
	}
	// Puts keep working after compaction and land above the new segment.
	if _, err := st.Put(seedSpec(9), fakeResult(9, false)); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 5 {
		t.Fatalf("Len = %d after post-compaction Put, want 5", st.Len())
	}
}

// TestLogAutoCompactTriggers: with a tiny garbage floor, background
// compaction kicks in once superseded bytes dominate and reclaims
// them without disturbing a single verdict.
func TestLogAutoCompactTriggers(t *testing.T) {
	st := openLog(t)
	st.AutoCompact = true
	st.CompactMinGarbage = 1
	keys, _ := fillLog(t, st, 2)
	var want [][]byte
	for i := 0; i < 2; i++ {
		raw, err := st.Put(seedSpec(i), fakeResult(500+i, false))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, raw)
	}
	// More overwrites so garbage > live regardless of scheduling.
	for round := 0; round < 4; round++ {
		for i := 0; i < 2; i++ {
			raw, err := st.Put(seedSpec(i), fakeResult(500+i, false))
			if err != nil {
				t.Fatal(err)
			}
			want[i] = raw
		}
	}
	if err := st.Close(); err != nil { // waits for the background pass
		t.Fatal(err)
	}
	if st.Stats().Compactions == 0 {
		t.Fatal("background compaction never triggered")
	}
	st2, err := store.OpenLog(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for i, key := range keys {
		if _, _, raw, ok := st2.GetByKey(key); !ok || !bytes.Equal(raw, want[i]) {
			t.Fatalf("key %d lost or mutated across auto-compaction", i)
		}
	}
}

// TestLogConcurrentReadsDuringCompaction: readers racing Puts and an
// explicit compaction see only complete, correct entries (run under
// -race in CI's store shard).
func TestLogConcurrentReadsDuringCompaction(t *testing.T) {
	st := openLog(t)
	keys, raws := fillLog(t, st, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[(g+i)%len(keys)]
				if _, _, raw, ok := st.GetByKey(key); ok && !bytes.Equal(raw, raws[key]) {
					t.Errorf("reader %d: wrong bytes for %s", g, key[:8])
					return
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		if _, err := st.Put(seedSpec(i%8), fakeResult(100+i%8, false)); err != nil {
			t.Error(err)
		}
		if i%5 == 4 {
			if _, err := st.Compact(); err != nil {
				t.Error(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
