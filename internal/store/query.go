package store

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/explore"
)

// This file is the query plane over the verdict warehouse: list and
// filter stored verdicts, aggregate pass rates per campaign, and diff
// two campaign reports cell by cell. Everything is built on
// Interface.Scan and the persisted campaign manifests, so the same
// answers come back from either engine, from ccserve's /v1/verdicts
// and /v1/campaigns endpoints, and from cccheck -mode query offline.

// Filter selects stored verdicts. Zero-valued fields match
// everything; set fields must equal the entry's canonical spec field
// (or, for Verdict, the result's verdict class).
type Filter struct {
	Alg      string `json:"alg,omitempty"`
	Topo     string `json:"topo,omitempty"`
	Daemon   string `json:"daemon,omitempty"`
	Init     string `json:"init,omitempty"`
	Mutation string `json:"mutation,omitempty"`
	// Verdict selects by result class: verified | bounded | violated.
	Verdict string `json:"verdict,omitempty"`
}

// ParseFilter parses the filter grammar the HTTP API and cccheck
// share: a comma-separated list of key=value pairs over the keys
// alg, topo, daemon, init, mutation, verdict — e.g.
// "alg=cc2,topo=ring:3,verdict=violated". Values take the same
// aliases the spec fields do (they are canonicalized before
// matching). An empty string is the match-all filter.
func ParseFilter(s string) (Filter, error) {
	var f Filter
	if strings.TrimSpace(s) == "" {
		return f, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || v == "" {
			return f, fmt.Errorf("store: bad filter element %q (want key=value)", part)
		}
		v = strings.ToLower(strings.TrimSpace(v))
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "alg":
			f.Alg = v
		case "topo":
			f.Topo = v
		case "daemon":
			f.Daemon = v
		case "init":
			f.Init = v
		case "mutation":
			f.Mutation = v
		case "verdict":
			switch v {
			case "verified", "bounded", "violated":
				f.Verdict = v
			default:
				return f, fmt.Errorf("store: bad verdict %q (verified|bounded|violated)", v)
			}
		default:
			return f, fmt.Errorf("store: unknown filter key %q (alg|topo|daemon|init|mutation|verdict)", k)
		}
	}
	return f, nil
}

// canonicalize runs the filter's spec-shaped fields through the same
// alias resolution specs get, so "daemon=sync" matches entries stored
// as "synchronous".
func (f Filter) canonicalize() Filter {
	c := JobSpec{Alg: f.Alg, Topo: f.Topo, Daemon: f.Daemon, Init: f.Init, Mutation: f.Mutation}.Canonical()
	out := f
	out.Alg = c.Alg
	out.Topo = c.Topo
	if f.Daemon != "" {
		out.Daemon = c.Daemon
	}
	if f.Init != "" {
		out.Init = c.Init
	}
	out.Mutation = c.Mutation
	return out
}

// Match reports whether a canonical spec with the given verdict class
// passes the filter.
func (f Filter) Match(spec JobSpec, verdict string) bool {
	c := f.canonicalize()
	if c.Alg != "" && spec.Alg != c.Alg {
		return false
	}
	if c.Topo != "" && spec.Topo != c.Topo {
		return false
	}
	if c.Daemon != "" && spec.Daemon != c.Daemon {
		return false
	}
	if c.Init != "" && spec.Init != c.Init {
		return false
	}
	if c.Mutation != "" && spec.Mutation != c.Mutation {
		return false
	}
	if c.Verdict != "" && verdict != c.Verdict {
		return false
	}
	return true
}

// VerdictRow is one stored verdict as the query plane renders it.
type VerdictRow struct {
	Key         string  `json:"key"`
	Spec        JobSpec `json:"spec"`
	Verdict     string  `json:"verdict"`
	Inits       int     `json:"inits"`
	States      int     `json:"states"`
	Transitions int64   `json:"transitions"`
	Violations  int     `json:"violations"`
}

func rowFromResult(key string, spec JobSpec, res *explore.Result) VerdictRow {
	return VerdictRow{
		Key:         key,
		Spec:        spec,
		Verdict:     res.Verdict(),
		Inits:       res.Inits,
		States:      res.States,
		Transitions: res.Transitions,
		Violations:  len(res.Violations),
	}
}

// List returns every stored verdict passing the filter, in key order
// — deterministic for a given warehouse content, whichever engine
// holds it and however many workers filled it.
func List(st Interface, f Filter) ([]VerdictRow, error) {
	rows := []VerdictRow{}
	err := st.Scan(func(key string, spec JobSpec, result []byte) error {
		var res explore.Result
		if json.Unmarshal(result, &res) != nil {
			return nil // Scan already validated the checksum; treat residual damage as a miss
		}
		if !f.Match(spec, res.Verdict()) {
			return nil
		}
		rows = append(rows, rowFromResult(key, spec, &res))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Summary aggregates one campaign's cells (or any key set) by verdict
// class. PassRate is the fraction of present cells that did not
// produce a violation — verified and bounded cells both count as
// passing, matching the exit-code policy (violations outrank bounds).
type Summary struct {
	Campaign string         `json:"campaign,omitempty"`
	Cells    int            `json:"cells"`
	Present  int            `json:"present"`
	Missing  int            `json:"missing"`
	Verified int            `json:"verified"`
	Bounded  int            `json:"bounded"`
	Violated int            `json:"violated"`
	PassRate float64        `json:"pass_rate"`
	ByAlg    map[string]int `json:"by_alg,omitempty"`
	ByTopo   map[string]int `json:"by_topo,omitempty"`
}

// Summarize aggregates the verdicts stored under the given keys.
// Keys without a stored verdict count as missing (the campaign is
// still running, or its cache was wiped); duplicates are counted each
// time, mirroring the manifest.
func Summarize(st Interface, keys []string) Summary {
	s := Summary{Cells: len(keys), ByAlg: map[string]int{}, ByTopo: map[string]int{}}
	for _, key := range keys {
		spec, res, _, ok := st.GetByKey(key)
		if !ok {
			s.Missing++
			continue
		}
		s.Present++
		s.ByAlg[spec.Alg]++
		s.ByTopo[spec.Topo]++
		switch res.Verdict() {
		case "verified":
			s.Verified++
		case "bounded":
			s.Bounded++
		case "violated":
			s.Violated++
		}
	}
	if s.Present > 0 {
		s.PassRate = float64(s.Present-s.Violated) / float64(s.Present)
	}
	if len(s.ByAlg) == 0 {
		s.ByAlg = nil
	}
	if len(s.ByTopo) == 0 {
		s.ByTopo = nil
	}
	return s
}

// CampaignSummary aggregates a persisted campaign manifest.
func CampaignSummary(st Interface, id string) (Summary, error) {
	keys, ok := st.GetCampaign(id)
	if !ok {
		return Summary{}, fmt.Errorf("store: unknown campaign %q", id)
	}
	s := Summarize(st, keys)
	s.Campaign = id
	return s, nil
}

// DiffRow is one cell-by-cell comparison between two campaigns,
// aligned by expansion position. A missing side (shorter campaign, or
// a cell with no stored verdict) has an empty verdict.
type DiffRow struct {
	Index    int     `json:"index"`
	KeyA     string  `json:"key_a,omitempty"`
	KeyB     string  `json:"key_b,omitempty"`
	Spec     JobSpec `json:"spec"`
	VerdictA string  `json:"verdict_a"`
	VerdictB string  `json:"verdict_b"`
	Equal    bool    `json:"equal"`
}

// Diff is the cell-by-cell comparison of two campaigns.
type Diff struct {
	A     string `json:"a"`
	B     string `json:"b"`
	Cells int    `json:"cells"`
	// Equal counts rows where both sides are present with the same
	// verdict; Differing counts everything else (including cells only
	// one side has).
	Equal     int       `json:"equal"`
	Differing int       `json:"differing"`
	Rows      []DiffRow `json:"rows"`
}

// DiffCampaigns compares two persisted campaigns cell by cell in
// expansion order.
func DiffCampaigns(st Interface, a, b string) (*Diff, error) {
	keysA, ok := st.GetCampaign(a)
	if !ok {
		return nil, fmt.Errorf("store: unknown campaign %q", a)
	}
	keysB, ok := st.GetCampaign(b)
	if !ok {
		return nil, fmt.Errorf("store: unknown campaign %q", b)
	}
	return DiffCells(st, a, b, keysA, keysB), nil
}

// DiffCells is DiffCampaigns over explicit key lists — the serving
// tier resolves campaigns from memory or manifests before calling it.
// The spec column comes from whichever side has the cell (A
// preferred) so a human can see what differs, not just that something
// does.
func DiffCells(st Interface, a, b string, keysA, keysB []string) *Diff {
	n := max(len(keysA), len(keysB))
	d := &Diff{A: a, B: b, Cells: n, Rows: make([]DiffRow, 0, n)}
	for i := 0; i < n; i++ {
		row := DiffRow{Index: i}
		var haveSpec bool
		if i < len(keysA) {
			row.KeyA = keysA[i]
			if spec, res, _, ok := st.GetByKey(keysA[i]); ok {
				row.VerdictA = res.Verdict()
				row.Spec, haveSpec = spec, true
			}
		}
		if i < len(keysB) {
			row.KeyB = keysB[i]
			if spec, res, _, ok := st.GetByKey(keysB[i]); ok {
				row.VerdictB = res.Verdict()
				if !haveSpec {
					row.Spec = spec
				}
			}
		}
		row.Equal = row.VerdictA != "" && row.VerdictA == row.VerdictB && row.KeyA != "" && row.KeyB != ""
		if row.Equal {
			d.Equal++
		} else {
			d.Differing++
		}
		d.Rows = append(d.Rows, row)
	}
	return d
}
