package store_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/store"
)

// Query-plane tests: the filter grammar, and golden-pinned JSON for
// list/filter/summary/diff over a fixture warehouse — asserted
// byte-identical across both store engines and across campaign worker
// counts, the property that makes query output reproducible evidence
// rather than a function of scheduling.

func TestParseFilter(t *testing.T) {
	good := map[string]store.Filter{
		"":                                {},
		"  ":                              {},
		"alg=cc2":                         {Alg: "cc2"},
		"alg=CC2, topo=ring:3":            {Alg: "cc2", Topo: "ring:3"},
		"verdict=violated":                {Verdict: "violated"},
		"daemon=sync,init=legit":          {Daemon: "sync", Init: "legit"},
		"mutation=leave-early,alg=cc2":    {Mutation: "leave-early", Alg: "cc2"},
		"topo=ring:3,verdict=verified":    {Topo: "ring:3", Verdict: "verified"},
		" alg = cc1 , verdict = bounded ": {Alg: "cc1", Verdict: "bounded"},
	}
	for in, want := range good {
		got, err := store.ParseFilter(in)
		if err != nil {
			t.Errorf("ParseFilter(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseFilter(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{
		"alg",             // no value
		"alg=",            // empty value
		"color=red",       // unknown key
		"verdict=maybe",   // unknown verdict class
		"alg=cc2,,",       // empty element
		"alg=cc2,verdict", // trailing bad element
	} {
		if _, err := store.ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q) accepted", bad)
		}
	}
	// Aliases canonicalize before matching: daemon=sync matches entries
	// stored under "synchronous".
	f := store.Filter{Daemon: "sync"}
	spec := store.JobSpec{Alg: "cc2", Topo: "ring:3", Daemon: "synchronous", Init: "legit"}.Canonical()
	if !f.Match(spec, "verified") {
		t.Error("daemon alias did not canonicalize in Match")
	}
}

// queryCells is the fixture grid: two verified cells, one bounded
// (tiny state cap), one violated (mutated guard).
func queryCells(t *testing.T) []store.JobSpec {
	t.Helper()
	cells := []store.JobSpec{
		{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "legit"},
		{Alg: "cc1", Topo: "ring:3", Daemon: "central", Init: "legit"},
		{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "cc", MaxStates: 5},
		{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "legit", Mutation: "leave-early", MaxViolations: 1},
	}
	for i, c := range cells {
		cells[i] = c.Canonical()
	}
	return cells
}

// buildWarehouse runs the fixture grid into a fresh store of the
// given engine at the given worker count and persists two campaign
// manifests: A = the first three cells, B = cells 1,2,4 plus one key
// with no stored verdict (a still-running cell).
func buildWarehouse(t *testing.T, engine string, workers int) (store.Interface, string, string) {
	t.Helper()
	st := openEngine(t, engine, nil)
	cells := queryCells(t)
	rep := campaign.Run(context.Background(), st, cells, campaign.RunOptions{Workers: workers})
	if !rep.Complete() {
		t.Fatalf("fixture campaign incomplete:\n%s", rep.JSON())
	}
	key := func(i int) string { return cells[i].Key() }
	keysA := []string{key(0), key(1), key(2)}
	keysB := []string{key(0), key(1), key(3), "0000000000000000000000000000000000000000000000000000000000000000"}
	idA, idB := store.CampaignID(keysA), store.CampaignID(keysB)
	if err := st.PutCampaign(idA, keysA); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(idB, keysB); err != nil {
		t.Fatal(err)
	}
	return st, idA, idB
}

// goldenCompare marshals the document exactly like the ccserve
// endpoints and cccheck -mode query do and compares it to the pinned
// file; UPDATE_QUERY_GOLDEN=1 rewrites the pins.
func goldenCompare(t *testing.T, name string, doc any) {
	t.Helper()
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join("testdata", "query", name)
	if os.Getenv("UPDATE_QUERY_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_QUERY_GOLDEN=1 to regenerate)", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("%s drifted from the pinned golden:\n--- got ---\n%s--- want ---\n%s", name, data, want)
	}
}

// TestQueryGolden pins the full query surface over the fixture
// warehouse and proves it byte-identical across engine × worker-count
// combinations.
func TestQueryGolden(t *testing.T) {
	for _, engine := range []string{store.EngineDir, store.EngineLog} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/j%d", engine, workers), func(t *testing.T) {
				st, idA, idB := buildWarehouse(t, engine, workers)

				list, err := store.List(st, store.Filter{})
				if err != nil {
					t.Fatal(err)
				}
				goldenCompare(t, "list_all.json", map[string]any{"count": len(list), "verdicts": list})

				f, err := store.ParseFilter("alg=cc2,verdict=violated")
				if err != nil {
					t.Fatal(err)
				}
				filtered, err := store.List(st, f)
				if err != nil {
					t.Fatal(err)
				}
				if len(filtered) != 1 || filtered[0].Verdict != "violated" {
					t.Fatalf("filter returned %d rows, want the 1 violated cell", len(filtered))
				}
				goldenCompare(t, "list_filtered.json", map[string]any{"count": len(filtered), "verdicts": filtered})

				sumA, err := store.CampaignSummary(st, idA)
				if err != nil {
					t.Fatal(err)
				}
				sumA.Campaign = "A" // golden stability: pin a label, not the hash
				goldenCompare(t, "summary_a.json", sumA)
				if sumA.Verified != 2 || sumA.Bounded != 1 || sumA.Violated != 0 || sumA.Missing != 0 || sumA.PassRate != 1 {
					t.Fatalf("campaign A summary wrong: %+v", sumA)
				}

				sumB, err := store.CampaignSummary(st, idB)
				if err != nil {
					t.Fatal(err)
				}
				sumB.Campaign = "B"
				goldenCompare(t, "summary_b.json", sumB)
				if sumB.Violated != 1 || sumB.Missing != 1 || sumB.Present != 3 {
					t.Fatalf("campaign B summary wrong: %+v", sumB)
				}

				d, err := store.DiffCampaigns(st, idA, idB)
				if err != nil {
					t.Fatal(err)
				}
				d.A, d.B = "A", "B"
				goldenCompare(t, "diff_ab.json", d)
				if d.Cells != 4 || d.Equal != 2 || d.Differing != 2 {
					t.Fatalf("diff shape wrong: %+v", d)
				}

				if _, err := store.CampaignSummary(st, "nope"); err == nil {
					t.Fatal("unknown campaign summarized")
				}
				if _, err := store.DiffCampaigns(st, idA, "nope"); err == nil {
					t.Fatal("diff against an unknown campaign succeeded")
				}
			})
		}
	}
}
