// Package store is the content-addressed verdict cache shared by the
// CLIs (cccheck -cache, ccbench -cache) and the ccserve HTTP service:
// one exhaustive-verification job — an (algorithm, topology, daemon
// branching, init family, bounds, symmetry, mutation) tuple — is
// canonicalized into a stable hash key, and its explore.Result
// (verdict, counts, counterexample traces) is persisted as JSON under
// that key. Re-running the same job anywhere — another CLI invocation,
// another process, the server — returns the stored verdict byte for
// byte instead of recomputing it, which is what makes huge campaign
// grids resumable and the service's repeated queries O(1).
//
// Layout: DIR/<kk>/<key>.json where kk is the first two hex digits of
// the key (fan-out so directories stay small). Each entry embeds the
// format version and the canonical spec it answers; Get treats a
// version mismatch, a spec mismatch (hash collision or format drift)
// or a corrupted file as a miss, never an error — the cache is an
// accelerator, not a source of truth. Writes are atomic
// (temp file + rename in the same directory), so a killed campaign
// leaves only complete entries behind and a concurrent reader never
// observes a torn file.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/explore"
)

// Version is the entry-format version. Bump it whenever the JobSpec
// canonicalization or the explore.Result JSON shape changes
// incompatibly: every existing entry then reads as a miss and is
// recomputed rather than served stale.
//
// v2: results persisted by campaign.Execute carry StateBytes == 0
// (the retained-footprint measurement is process-local — it differs
// between a resumed and an uninterrupted run, and between an
// out-of-core and an in-memory one — so it cannot be part of
// byte-identical verdict bytes).
const Version = 2

// JobSpec identifies one exhaustive-verification job. The zero value
// of every optional field means "the default"; Canonical resolves
// aliases and fills defaults so that two spellings of the same job
// hash to the same key.
type JobSpec struct {
	// Alg is the algorithm: cc1 | cc2 | cc3 | dining | token-ring.
	Alg string `json:"alg"`
	// Topo is a hypergraph.Parse topology spec (e.g. ring:3, star:4).
	Topo string `json:"topo"`
	// Daemon is the branching mode: central | synchronous (alias sync)
	// | all-subsets (alias all).
	Daemon string `json:"daemon"`
	// Init is the initial-configuration family: legit | cc | cc-full |
	// random. Empty defaults to cc-full for the CC algorithms and legit
	// for the baselines (their only supported family).
	Init string `json:"init"`
	// RandomInits is the configuration count for Init == "random"
	// (default 256; canonicalized to 0 otherwise).
	RandomInits int `json:"random_inits,omitempty"`
	// Seed feeds Init == "random" and the random topology families
	// (default 1; canonicalized to 0 when neither consumes it).
	Seed int64 `json:"seed,omitempty"`
	// MaxStates bounds distinct configurations: 0 = the default
	// (2,000,000), negative = unlimited (canonicalized to -1).
	MaxStates int `json:"max_states"`
	// MaxDepth bounds the BFS depth (0 = unlimited).
	MaxDepth int `json:"max_depth,omitempty"`
	// MaxBranch bounds successors per configuration (default 65536).
	MaxBranch int `json:"max_branch"`
	// MaxViolations stops the run after this many counterexamples
	// (default 3).
	MaxViolations int `json:"max_violations"`
	// Symmetry explores modulo the model's declared automorphism group.
	Symmetry bool `json:"symmetry,omitempty"`
	// Mutation deliberately breaks a guard (leave-early | skip-stab);
	// CC algorithms only.
	Mutation string `json:"mutation,omitempty"`
	// NoDeadlock skips treating terminal configurations as violations.
	NoDeadlock bool `json:"no_deadlock,omitempty"`
	// NoClosure skips the Correct(p)-closure check.
	NoClosure bool `json:"no_closure,omitempty"`
	// NoConverge skips the one-round convergence check (synchronous
	// daemon only; canonicalized to false elsewhere, where the check
	// never runs).
	NoConverge bool `json:"no_converge,omitempty"`
}

// DefaultMaxStates is the distinct-configuration bound applied when
// JobSpec.MaxStates is zero (matches the cccheck default).
const DefaultMaxStates = 2_000_000

// randomTopoFamilies are the hypergraph.Parse families that draw from
// the seed; for every other topology the seed is irrelevant to the
// result and canonicalized away.
var randomTopoFamilies = map[string]bool{
	"kuniform": true, "mixed": true, "bipartite": true,
	"density": true, "scenario": true,
}

// topoAliases maps hypergraph.Parse spellings to one canonical form.
var topoAliases = map[string]string{
	"figure1": "fig1", "figure2": "fig2", "figure3": "fig3", "figure4": "fig4",
}

// RandomTopo reports whether the (canonical) topology spec names a
// random family, i.e. consumes the seed.
func RandomTopo(topo string) bool {
	name, _, _ := strings.Cut(topo, ":")
	return randomTopoFamilies[name]
}

// Canonical returns the spec with aliases resolved, defaults filled
// and irrelevant fields zeroed, so that every spelling of the same job
// produces the same Key. It performs no semantic validation (that is
// campaign.Validate's job); canonicalizing garbage yields garbage with
// a stable key.
func (s JobSpec) Canonical() JobSpec {
	c := s
	c.Alg = strings.ToLower(strings.TrimSpace(c.Alg))
	c.Topo = strings.ToLower(strings.TrimSpace(c.Topo))
	if a, ok := topoAliases[c.Topo]; ok {
		c.Topo = a
	}
	c.Daemon = strings.ToLower(strings.TrimSpace(c.Daemon))
	switch c.Daemon {
	case "sync":
		c.Daemon = "synchronous"
	case "all", "":
		c.Daemon = "all-subsets"
	}
	c.Init = strings.ToLower(strings.TrimSpace(c.Init))
	c.Mutation = strings.ToLower(strings.TrimSpace(c.Mutation))
	if c.Mutation == "none" {
		c.Mutation = ""
	}
	if c.Init == "" {
		if c.Alg == "dining" || c.Alg == "token-ring" {
			c.Init = "legit"
		} else {
			c.Init = "cc-full"
		}
	}
	if c.Init == "random" {
		if c.RandomInits <= 0 {
			c.RandomInits = 256
		}
	} else {
		c.RandomInits = 0
	}
	if c.Init == "random" || RandomTopo(c.Topo) {
		if c.Seed == 0 {
			c.Seed = 1
		}
	} else {
		c.Seed = 0
	}
	switch {
	case c.MaxStates == 0:
		c.MaxStates = DefaultMaxStates
	case c.MaxStates < 0:
		c.MaxStates = -1
	}
	if c.MaxDepth < 0 {
		c.MaxDepth = 0
	}
	if c.MaxBranch <= 0 {
		c.MaxBranch = 1 << 16
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 3
	}
	if c.Daemon != "synchronous" {
		// The convergence check only runs under synchronous branching;
		// the flag is meaningless elsewhere.
		c.NoConverge = false
	}
	return c
}

// Key returns the content address of the canonicalized spec: the hex
// SHA-256 of its canonical JSON. Identical jobs — under any alias or
// default spelling — share a key; any semantic difference changes it.
func (s JobSpec) Key() string {
	data, err := json.Marshal(s.Canonical())
	if err != nil {
		panic(fmt.Sprintf("store: JobSpec marshal cannot fail: %v", err)) // all fields are plain scalars
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// String renders the spec compactly for progress lines and logs.
func (s JobSpec) String() string {
	c := s.Canonical()
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%s/%s", c.Alg, c.Topo, c.Daemon, c.Init)
	if c.Mutation != "" {
		fmt.Fprintf(&b, "+mutate:%s", c.Mutation)
	}
	if c.Symmetry {
		b.WriteString("+sym")
	}
	return b.String()
}

// entry is the on-disk schema.
type entry struct {
	Version int             `json:"version"`
	Spec    JobSpec         `json:"spec"`
	Result  json.RawMessage `json:"result"`
}

// Store is a content-addressed verdict cache rooted at a directory.
// All methods are safe for concurrent use from multiple goroutines and
// multiple processes (atomicity comes from same-directory rename).
type Store struct {
	dir string
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the cache root.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(key string) string {
	return filepath.Join(st.dir, key[:2], key+".json")
}

// Get looks the spec's verdict up. On a hit it returns the decoded
// result plus the exact stored result bytes (so cached verdicts can be
// served byte-identically to freshly computed ones). Version
// mismatches, spec mismatches and unreadable or corrupted entries are
// misses, not errors.
func (st *Store) Get(spec JobSpec) (*explore.Result, []byte, bool) {
	c := spec.Canonical()
	data, err := os.ReadFile(st.path(c.Key()))
	if err != nil {
		return nil, nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, nil, false // corrupted: recompute
	}
	if e.Version != Version {
		return nil, nil, false // format drift: invalidated
	}
	want, _ := json.Marshal(c)
	got, _ := json.Marshal(e.Spec.Canonical())
	if string(want) != string(got) {
		return nil, nil, false // hash collision or stale canonicalization
	}
	var res explore.Result
	if err := json.Unmarshal(e.Result, &res); err != nil {
		return nil, nil, false
	}
	return &res, []byte(e.Result), true
}

// Put persists the result under the spec's key, atomically, and
// returns the exact result bytes written (the same bytes every later
// Get returns). Result and entry are stored as compact deterministic
// JSON — compact so the raw result passes through the entry wrapper
// verbatim (an indented wrapper would re-indent it) — so identical
// results, e.g. the same job explored at different worker counts,
// round-trip byte-identically.
func (st *Store) Put(spec JobSpec, res *explore.Result) ([]byte, error) {
	c := spec.Canonical()
	raw, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("store: marshal result: %v", err)
	}
	data, err := json.Marshal(entry{Version: Version, Spec: c, Result: raw})
	if err != nil {
		return nil, fmt.Errorf("store: marshal entry: %v", err)
	}
	path := st.path(c.Key())
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("store: %v", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("store: %v", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("store: %v", err)
	}
	return raw, nil
}

// GetByKey reads the entry stored under a content key directly —
// the serving layer evicts completed in-memory jobs and re-hydrates
// them from the store by their job id, which IS the key. The embedded
// spec must canonicalize back to the key (and the version must match);
// anything else reads as a miss.
func (st *Store) GetByKey(key string) (JobSpec, *explore.Result, []byte, bool) {
	if len(key) < 3 {
		return JobSpec{}, nil, nil, false
	}
	data, err := os.ReadFile(st.path(key))
	if err != nil {
		return JobSpec{}, nil, nil, false
	}
	var e entry
	if json.Unmarshal(data, &e) != nil || e.Version != Version {
		return JobSpec{}, nil, nil, false
	}
	c := e.Spec.Canonical()
	if c.Key() != key {
		return JobSpec{}, nil, nil, false
	}
	var res explore.Result
	if json.Unmarshal(e.Result, &res) != nil {
		return JobSpec{}, nil, nil, false
	}
	return c, &res, []byte(e.Result), true
}

// Len counts the complete entries currently in the store (a
// diagnostic; it does not validate them).
func (st *Store) Len() int {
	n := 0
	filepath.WalkDir(st.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") && !strings.HasPrefix(filepath.Base(path), ".") {
			n++
		}
		return nil
	})
	return n
}
