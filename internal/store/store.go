// Package store is the content-addressed verdict warehouse shared by
// the CLIs (cccheck -cache, ccbench -cache) and the ccserve HTTP
// service: one exhaustive-verification job — an (algorithm, topology,
// daemon branching, init family, bounds, symmetry, mutation) tuple —
// is canonicalized into a stable hash key, and its explore.Result
// (verdict, counts, counterexample traces) is persisted as JSON under
// that key. Re-running the same job anywhere — another CLI invocation,
// another process, the server — returns the stored verdict byte for
// byte instead of recomputing it, which is what makes huge campaign
// grids resumable and the service's repeated queries O(1).
//
// Two engines implement the same narrow Interface and persist the
// same entry bytes, selected by -store-engine {dir,log}:
//
//   - DirStore (the original, and the differential oracle): one file
//     per verdict at DIR/<kk>/<key>.json where kk is the first two hex
//     digits of the key (fan-out so directories stay small).
//   - LogStore: append-only segment files under DIR/segments/ holding
//     checksummed records, a sparse in-memory index rebuilt from a
//     segment scan on open, and compaction (explicit or background)
//     that drops superseded and corrupted records. Built for campaign
//     fleets that produce millions of small verdicts: a Put is one
//     appended record, not one file.
//
// Each entry embeds the format version, the canonical spec it answers
// and an FNV-64a checksum over spec+result; Get treats a version
// mismatch, a spec mismatch (hash collision or format drift) or a
// corrupted artifact as a miss, never an error — the cache is an
// accelerator, not a source of truth. A corrupted artifact (bad JSON,
// checksum mismatch) is additionally preserved under DIR/quarantine/
// for diagnosis but never consulted again. Writes are atomic or
// append-then-fsync, and transient failures (ENOSPC, EIO) are retried
// under a bounded exponential-backoff policy, so a killed or
// fault-ridden campaign leaves only complete entries behind and a
// concurrent reader never observes a torn verdict. All file I/O goes
// through a chaos.FS, which is how the chaos battery drives this
// package through injected faults (see docs/robustness.md).
//
// On top of the engines sits the query plane (Filter, List, Summarize,
// DiffCampaigns): campaign manifests persisted by PutCampaign make
// pass-rate aggregation and campaign diffing work offline and across
// restarts, exposed through ccserve's /v1/verdicts and /v1/campaigns
// endpoints and cccheck -mode query (see docs/api.md).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/explore"
)

// Version is the entry-format version. Bump it whenever the JobSpec
// canonicalization or the explore.Result JSON shape changes
// incompatibly: every existing entry then reads as a miss and is
// recomputed rather than served stale.
//
// v2: results persisted by campaign.Execute carry StateBytes == 0
// (the retained-footprint measurement is process-local — it differs
// between a resumed and an uninterrupted run, and between an
// out-of-core and an in-memory one — so it cannot be part of
// byte-identical verdict bytes).
//
// v3: entries carry an FNV-64a checksum over canonical spec + result
// bytes, so silent corruption at rest (a bit flip inside otherwise
// valid JSON) is detected and quarantined instead of served as a
// wrong verdict.
const Version = 3

// QuarantineDir is the subdirectory of the cache root that corrupted
// artifacts are moved into.
const QuarantineDir = "quarantine"

// JobSpec identifies one exhaustive-verification job. The zero value
// of every optional field means "the default"; Canonical resolves
// aliases and fills defaults so that two spellings of the same job
// hash to the same key.
type JobSpec struct {
	// Alg is the algorithm: cc1 | cc2 | cc3 | dining | token-ring.
	Alg string `json:"alg"`
	// Topo is a hypergraph.Parse topology spec (e.g. ring:3, star:4).
	Topo string `json:"topo"`
	// Daemon is the branching mode: central | synchronous (alias sync)
	// | all-subsets (alias all).
	Daemon string `json:"daemon"`
	// Init is the initial-configuration family: legit | cc | cc-full |
	// random. Empty defaults to cc-full for the CC algorithms and legit
	// for the baselines (their only supported family).
	Init string `json:"init"`
	// RandomInits is the configuration count for Init == "random"
	// (default 256; canonicalized to 0 otherwise).
	RandomInits int `json:"random_inits,omitempty"`
	// Seed feeds Init == "random" and the random topology families
	// (default 1; canonicalized to 0 when neither consumes it).
	Seed int64 `json:"seed,omitempty"`
	// MaxStates bounds distinct configurations: 0 = the default
	// (2,000,000), negative = unlimited (canonicalized to -1).
	MaxStates int `json:"max_states"`
	// MaxDepth bounds the BFS depth (0 = unlimited).
	MaxDepth int `json:"max_depth,omitempty"`
	// MaxBranch bounds successors per configuration (default 65536).
	MaxBranch int `json:"max_branch"`
	// MaxViolations stops the run after this many counterexamples
	// (default 3).
	MaxViolations int `json:"max_violations"`
	// Symmetry explores modulo the model's declared automorphism group.
	Symmetry bool `json:"symmetry,omitempty"`
	// Mutation deliberately breaks a guard (leave-early | skip-stab);
	// CC algorithms only.
	Mutation string `json:"mutation,omitempty"`
	// NoDeadlock skips treating terminal configurations as violations.
	NoDeadlock bool `json:"no_deadlock,omitempty"`
	// NoClosure skips the Correct(p)-closure check.
	NoClosure bool `json:"no_closure,omitempty"`
	// NoConverge skips the one-round convergence check (synchronous
	// daemon only; canonicalized to false elsewhere, where the check
	// never runs).
	NoConverge bool `json:"no_converge,omitempty"`
}

// DefaultMaxStates is the distinct-configuration bound applied when
// JobSpec.MaxStates is zero (matches the cccheck default).
const DefaultMaxStates = 2_000_000

// randomTopoFamilies are the hypergraph.Parse families that draw from
// the seed; for every other topology the seed is irrelevant to the
// result and canonicalized away.
var randomTopoFamilies = map[string]bool{
	"kuniform": true, "mixed": true, "bipartite": true,
	"density": true, "scenario": true,
}

// topoAliases maps hypergraph.Parse spellings to one canonical form.
var topoAliases = map[string]string{
	"figure1": "fig1", "figure2": "fig2", "figure3": "fig3", "figure4": "fig4",
}

// RandomTopo reports whether the (canonical) topology spec names a
// random family, i.e. consumes the seed.
func RandomTopo(topo string) bool {
	name, _, _ := strings.Cut(topo, ":")
	return randomTopoFamilies[name]
}

// Canonical returns the spec with aliases resolved, defaults filled
// and irrelevant fields zeroed, so that every spelling of the same job
// produces the same Key. It performs no semantic validation (that is
// campaign.Validate's job); canonicalizing garbage yields garbage with
// a stable key.
func (s JobSpec) Canonical() JobSpec {
	c := s
	c.Alg = strings.ToLower(strings.TrimSpace(c.Alg))
	c.Topo = strings.ToLower(strings.TrimSpace(c.Topo))
	if a, ok := topoAliases[c.Topo]; ok {
		c.Topo = a
	}
	c.Daemon = strings.ToLower(strings.TrimSpace(c.Daemon))
	switch c.Daemon {
	case "sync":
		c.Daemon = "synchronous"
	case "all", "":
		c.Daemon = "all-subsets"
	}
	c.Init = strings.ToLower(strings.TrimSpace(c.Init))
	c.Mutation = strings.ToLower(strings.TrimSpace(c.Mutation))
	if c.Mutation == "none" {
		c.Mutation = ""
	}
	if c.Init == "" {
		if c.Alg == "dining" || c.Alg == "token-ring" {
			c.Init = "legit"
		} else {
			c.Init = "cc-full"
		}
	}
	if c.Init == "random" {
		if c.RandomInits <= 0 {
			c.RandomInits = 256
		}
	} else {
		c.RandomInits = 0
	}
	if c.Init == "random" || RandomTopo(c.Topo) {
		if c.Seed == 0 {
			c.Seed = 1
		}
	} else {
		c.Seed = 0
	}
	switch {
	case c.MaxStates == 0:
		c.MaxStates = DefaultMaxStates
	case c.MaxStates < 0:
		c.MaxStates = -1
	}
	if c.MaxDepth < 0 {
		c.MaxDepth = 0
	}
	if c.MaxBranch <= 0 {
		c.MaxBranch = 1 << 16
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 3
	}
	if c.Daemon != "synchronous" {
		// The convergence check only runs under synchronous branching;
		// the flag is meaningless elsewhere.
		c.NoConverge = false
	}
	return c
}

// Key returns the content address of the canonicalized spec: the hex
// SHA-256 of its canonical JSON. Identical jobs — under any alias or
// default spelling — share a key; any semantic difference changes it.
func (s JobSpec) Key() string {
	data, err := json.Marshal(s.Canonical())
	if err != nil {
		panic(fmt.Sprintf("store: JobSpec marshal cannot fail: %v", err)) // all fields are plain scalars
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// String renders the spec compactly for progress lines and logs.
func (s JobSpec) String() string {
	c := s.Canonical()
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%s/%s", c.Alg, c.Topo, c.Daemon, c.Init)
	if c.Mutation != "" {
		fmt.Fprintf(&b, "+mutate:%s", c.Mutation)
	}
	if c.Symmetry {
		b.WriteString("+sym")
	}
	return b.String()
}

// CampaignID is the content address of a campaign: the hex SHA-256
// over its cell keys in expansion order. ccserve and cccheck campaign
// mode compute the same id for the same grid, so manifests persisted
// by either are queryable by both.
func CampaignID(keys []string) string {
	sum := sha256.New()
	for _, k := range keys {
		sum.Write([]byte(k))
	}
	return hex.EncodeToString(sum.Sum(nil))
}

// entry is the persisted verdict schema — identical bytes in both
// engines (a DirStore file body and a LogStore record payload), which
// is what makes the engines differentially testable and their Get
// results byte-interchangeable.
type entry struct {
	Version int             `json:"version"`
	Spec    JobSpec         `json:"spec"`
	Sum     string          `json:"sum"`
	Result  json.RawMessage `json:"result"`
}

// entrySum is the integrity checksum persisted with every entry:
// FNV-64a over the canonical spec JSON followed by the result bytes.
// It is an anti-corruption seal (one flipped bit anywhere in spec or
// result breaks it), not a cryptographic commitment — the SHA-256
// content key already plays that role for the spec.
func entrySum(specJSON, result []byte) string {
	h := fnv.New64a()
	h.Write(specJSON)
	h.Write(result)
	return hex.EncodeToString(h.Sum(nil))
}

// encodeEntry marshals the canonical spec and its result into the
// exact entry line both engines persist (compact deterministic JSON
// plus a trailing newline — compact so the raw result passes through
// the entry wrapper verbatim) and the raw result bytes every later
// Get returns.
func encodeEntry(c JobSpec, res *explore.Result) (line, raw []byte, err error) {
	raw, err = json.Marshal(res)
	if err != nil {
		return nil, nil, fmt.Errorf("store: marshal result: %v", err)
	}
	specJSON, err := json.Marshal(c)
	if err != nil {
		return nil, nil, fmt.Errorf("store: marshal spec: %v", err)
	}
	line, err = json.Marshal(entry{Version: Version, Spec: c, Sum: entrySum(specJSON, raw), Result: raw})
	if err != nil {
		return nil, nil, fmt.Errorf("store: marshal entry: %v", err)
	}
	return append(line, '\n'), raw, nil
}

// EncodeEntry renders the exact entry line both engines persist for
// (spec, result): compact deterministic JSON carrying the format
// version, the canonical spec, the FNV-64a integrity sum and the raw
// result bytes. Any two stores holding the same verdict hold these
// bytes identically, which is what lets the gossip plane put a
// checksummed, self-validating entry on the wire.
func EncodeEntry(spec JobSpec, res *explore.Result) ([]byte, error) {
	line, _, err := encodeEntry(spec.Canonical(), res)
	return line, err
}

// ErrEntryDrift reports entry bytes written under a different format
// version — a legitimate peer on an older or newer build, not
// corruption. Callers skip such entries without quarantining them.
var ErrEntryDrift = fmt.Errorf("store: entry format version drift")

// DecodeEntry validates entry bytes received over an untrusted
// channel (a gossip transfer) against the content key they claim to
// answer: the JSON must parse, the format version must match, the
// FNV-64a checksum must cover spec+result, and the embedded spec must
// canonicalize back to exactly key. On success it returns the
// canonical spec and decoded result, ready for a local Put (which
// re-encodes the identical bytes). Damage returns a *chaos.CorruptError
// — quarantine material, never ingestible; version drift returns
// ErrEntryDrift.
func DecodeEntry(key string, data []byte) (JobSpec, *explore.Result, error) {
	e, issue, detail := checkEntry(data)
	switch issue {
	case entryDrift:
		return JobSpec{}, nil, ErrEntryDrift
	case entryCorrupt:
		return JobSpec{}, nil, &chaos.CorruptError{Path: "entry " + key, Detail: detail}
	}
	spec, res, _, ok := matchKey(e, key)
	if !ok {
		return JobSpec{}, nil, &chaos.CorruptError{Path: "entry " + key, Detail: "embedded spec does not hash to the claimed key"}
	}
	return spec, res, nil
}

// entryIssue classifies what checkEntry found.
type entryIssue int

const (
	entryOK      entryIssue = iota
	entryDrift              // older/newer format version: a legitimate miss, never quarantined
	entryCorrupt            // undecodable bytes or checksum mismatch: quarantine material
)

// checkEntry structurally validates entry bytes: JSON must parse, the
// version must match and the checksum must cover spec+result. The
// engines share it so a damaged artifact is classified identically
// whether it sits in its own file or inside a segment record.
func checkEntry(data []byte) (entry, entryIssue, string) {
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return entry{}, entryCorrupt, "undecodable entry: " + err.Error()
	}
	if e.Version != Version {
		return entry{}, entryDrift, ""
	}
	specJSON, _ := json.Marshal(e.Spec)
	if entrySum(specJSON, e.Result) != e.Sum {
		return entry{}, entryCorrupt, "checksum mismatch"
	}
	return e, entryOK, ""
}

// matchSpec is the Get tail shared by both engines: the embedded spec
// must canonicalize to exactly the requested spec (anything else is a
// hash collision or stale canonicalization, served as a miss).
func matchSpec(e entry, c JobSpec) (*explore.Result, []byte, bool) {
	want, _ := json.Marshal(c)
	got, _ := json.Marshal(e.Spec.Canonical())
	if string(want) != string(got) {
		return nil, nil, false
	}
	var res explore.Result
	if err := json.Unmarshal(e.Result, &res); err != nil {
		return nil, nil, false
	}
	return &res, []byte(e.Result), true
}

// matchKey is the GetByKey tail shared by both engines: the embedded
// spec must hash back to the key it was found under.
func matchKey(e entry, key string) (JobSpec, *explore.Result, []byte, bool) {
	c := e.Spec.Canonical()
	if c.Key() != key {
		return JobSpec{}, nil, nil, false
	}
	var res explore.Result
	if json.Unmarshal(e.Result, &res) != nil {
		return JobSpec{}, nil, nil, false
	}
	return c, &res, []byte(e.Result), true
}
