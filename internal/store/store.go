// Package store is the content-addressed verdict cache shared by the
// CLIs (cccheck -cache, ccbench -cache) and the ccserve HTTP service:
// one exhaustive-verification job — an (algorithm, topology, daemon
// branching, init family, bounds, symmetry, mutation) tuple — is
// canonicalized into a stable hash key, and its explore.Result
// (verdict, counts, counterexample traces) is persisted as JSON under
// that key. Re-running the same job anywhere — another CLI invocation,
// another process, the server — returns the stored verdict byte for
// byte instead of recomputing it, which is what makes huge campaign
// grids resumable and the service's repeated queries O(1).
//
// Layout: DIR/<kk>/<key>.json where kk is the first two hex digits of
// the key (fan-out so directories stay small). Each entry embeds the
// format version, the canonical spec it answers and an FNV-64a
// checksum over spec+result; Get treats a version mismatch, a spec
// mismatch (hash collision or format drift) or a corrupted file as a
// miss, never an error — the cache is an accelerator, not a source of
// truth. A corrupted entry (bad JSON, checksum mismatch) is
// additionally moved to DIR/quarantine/ so it is preserved for
// diagnosis but never consulted again. Writes are atomic
// (temp file + fsync + rename in the same directory) and transient
// write failures (ENOSPC, EIO) are retried under a bounded
// exponential-backoff policy, so a killed or fault-ridden campaign
// leaves only complete entries behind and a concurrent reader never
// observes a torn file. All file I/O goes through a chaos.FS, which
// is how the chaos battery drives this package through injected
// faults (see docs/robustness.md).
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/explore"
)

// Version is the entry-format version. Bump it whenever the JobSpec
// canonicalization or the explore.Result JSON shape changes
// incompatibly: every existing entry then reads as a miss and is
// recomputed rather than served stale.
//
// v2: results persisted by campaign.Execute carry StateBytes == 0
// (the retained-footprint measurement is process-local — it differs
// between a resumed and an uninterrupted run, and between an
// out-of-core and an in-memory one — so it cannot be part of
// byte-identical verdict bytes).
//
// v3: entries carry an FNV-64a checksum over canonical spec + result
// bytes, so silent corruption at rest (a bit flip inside otherwise
// valid JSON) is detected and quarantined instead of served as a
// wrong verdict.
const Version = 3

// QuarantineDir is the subdirectory of the cache root that corrupted
// artifacts are moved into.
const QuarantineDir = "quarantine"

// JobSpec identifies one exhaustive-verification job. The zero value
// of every optional field means "the default"; Canonical resolves
// aliases and fills defaults so that two spellings of the same job
// hash to the same key.
type JobSpec struct {
	// Alg is the algorithm: cc1 | cc2 | cc3 | dining | token-ring.
	Alg string `json:"alg"`
	// Topo is a hypergraph.Parse topology spec (e.g. ring:3, star:4).
	Topo string `json:"topo"`
	// Daemon is the branching mode: central | synchronous (alias sync)
	// | all-subsets (alias all).
	Daemon string `json:"daemon"`
	// Init is the initial-configuration family: legit | cc | cc-full |
	// random. Empty defaults to cc-full for the CC algorithms and legit
	// for the baselines (their only supported family).
	Init string `json:"init"`
	// RandomInits is the configuration count for Init == "random"
	// (default 256; canonicalized to 0 otherwise).
	RandomInits int `json:"random_inits,omitempty"`
	// Seed feeds Init == "random" and the random topology families
	// (default 1; canonicalized to 0 when neither consumes it).
	Seed int64 `json:"seed,omitempty"`
	// MaxStates bounds distinct configurations: 0 = the default
	// (2,000,000), negative = unlimited (canonicalized to -1).
	MaxStates int `json:"max_states"`
	// MaxDepth bounds the BFS depth (0 = unlimited).
	MaxDepth int `json:"max_depth,omitempty"`
	// MaxBranch bounds successors per configuration (default 65536).
	MaxBranch int `json:"max_branch"`
	// MaxViolations stops the run after this many counterexamples
	// (default 3).
	MaxViolations int `json:"max_violations"`
	// Symmetry explores modulo the model's declared automorphism group.
	Symmetry bool `json:"symmetry,omitempty"`
	// Mutation deliberately breaks a guard (leave-early | skip-stab);
	// CC algorithms only.
	Mutation string `json:"mutation,omitempty"`
	// NoDeadlock skips treating terminal configurations as violations.
	NoDeadlock bool `json:"no_deadlock,omitempty"`
	// NoClosure skips the Correct(p)-closure check.
	NoClosure bool `json:"no_closure,omitempty"`
	// NoConverge skips the one-round convergence check (synchronous
	// daemon only; canonicalized to false elsewhere, where the check
	// never runs).
	NoConverge bool `json:"no_converge,omitempty"`
}

// DefaultMaxStates is the distinct-configuration bound applied when
// JobSpec.MaxStates is zero (matches the cccheck default).
const DefaultMaxStates = 2_000_000

// randomTopoFamilies are the hypergraph.Parse families that draw from
// the seed; for every other topology the seed is irrelevant to the
// result and canonicalized away.
var randomTopoFamilies = map[string]bool{
	"kuniform": true, "mixed": true, "bipartite": true,
	"density": true, "scenario": true,
}

// topoAliases maps hypergraph.Parse spellings to one canonical form.
var topoAliases = map[string]string{
	"figure1": "fig1", "figure2": "fig2", "figure3": "fig3", "figure4": "fig4",
}

// RandomTopo reports whether the (canonical) topology spec names a
// random family, i.e. consumes the seed.
func RandomTopo(topo string) bool {
	name, _, _ := strings.Cut(topo, ":")
	return randomTopoFamilies[name]
}

// Canonical returns the spec with aliases resolved, defaults filled
// and irrelevant fields zeroed, so that every spelling of the same job
// produces the same Key. It performs no semantic validation (that is
// campaign.Validate's job); canonicalizing garbage yields garbage with
// a stable key.
func (s JobSpec) Canonical() JobSpec {
	c := s
	c.Alg = strings.ToLower(strings.TrimSpace(c.Alg))
	c.Topo = strings.ToLower(strings.TrimSpace(c.Topo))
	if a, ok := topoAliases[c.Topo]; ok {
		c.Topo = a
	}
	c.Daemon = strings.ToLower(strings.TrimSpace(c.Daemon))
	switch c.Daemon {
	case "sync":
		c.Daemon = "synchronous"
	case "all", "":
		c.Daemon = "all-subsets"
	}
	c.Init = strings.ToLower(strings.TrimSpace(c.Init))
	c.Mutation = strings.ToLower(strings.TrimSpace(c.Mutation))
	if c.Mutation == "none" {
		c.Mutation = ""
	}
	if c.Init == "" {
		if c.Alg == "dining" || c.Alg == "token-ring" {
			c.Init = "legit"
		} else {
			c.Init = "cc-full"
		}
	}
	if c.Init == "random" {
		if c.RandomInits <= 0 {
			c.RandomInits = 256
		}
	} else {
		c.RandomInits = 0
	}
	if c.Init == "random" || RandomTopo(c.Topo) {
		if c.Seed == 0 {
			c.Seed = 1
		}
	} else {
		c.Seed = 0
	}
	switch {
	case c.MaxStates == 0:
		c.MaxStates = DefaultMaxStates
	case c.MaxStates < 0:
		c.MaxStates = -1
	}
	if c.MaxDepth < 0 {
		c.MaxDepth = 0
	}
	if c.MaxBranch <= 0 {
		c.MaxBranch = 1 << 16
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 3
	}
	if c.Daemon != "synchronous" {
		// The convergence check only runs under synchronous branching;
		// the flag is meaningless elsewhere.
		c.NoConverge = false
	}
	return c
}

// Key returns the content address of the canonicalized spec: the hex
// SHA-256 of its canonical JSON. Identical jobs — under any alias or
// default spelling — share a key; any semantic difference changes it.
func (s JobSpec) Key() string {
	data, err := json.Marshal(s.Canonical())
	if err != nil {
		panic(fmt.Sprintf("store: JobSpec marshal cannot fail: %v", err)) // all fields are plain scalars
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// String renders the spec compactly for progress lines and logs.
func (s JobSpec) String() string {
	c := s.Canonical()
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%s/%s", c.Alg, c.Topo, c.Daemon, c.Init)
	if c.Mutation != "" {
		fmt.Fprintf(&b, "+mutate:%s", c.Mutation)
	}
	if c.Symmetry {
		b.WriteString("+sym")
	}
	return b.String()
}

// entry is the on-disk schema.
type entry struct {
	Version int             `json:"version"`
	Spec    JobSpec         `json:"spec"`
	Sum     string          `json:"sum"`
	Result  json.RawMessage `json:"result"`
}

// entrySum is the integrity checksum persisted with every entry:
// FNV-64a over the canonical spec JSON followed by the result bytes.
// It is an anti-corruption seal (one flipped bit anywhere in spec or
// result breaks it), not a cryptographic commitment — the SHA-256
// content key already plays that role for the spec.
func entrySum(specJSON, result []byte) string {
	h := fnv.New64a()
	h.Write(specJSON)
	h.Write(result)
	return hex.EncodeToString(h.Sum(nil))
}

// Store is a content-addressed verdict cache rooted at a directory.
// All methods are safe for concurrent use from multiple goroutines and
// multiple processes (atomicity comes from same-directory rename).
type Store struct {
	dir string
	fs  chaos.FS
	// Retry bounds the transient-failure retry loop around durable
	// writes and reads. Defaults to chaos.DefaultPolicy.
	Retry chaos.Policy
	// Log, when set, receives one line per quarantined artifact and
	// per exhausted retry (printf-style).
	Log func(format string, args ...any)

	quarantined atomic.Int64
}

// Open creates (if needed) and returns the store rooted at dir, doing
// I/O directly against the host filesystem.
func Open(dir string) (*Store, error) { return OpenFS(dir, nil) }

// OpenFS is Open with an explicit filesystem (nil = the host
// filesystem); the chaos battery passes a chaos.FaultFS here.
func OpenFS(dir string, fsys chaos.FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty cache directory")
	}
	if fsys == nil {
		fsys = chaos.OS
	}
	st := &Store{dir: dir, fs: fsys, Retry: chaos.DefaultPolicy}
	if err := chaos.Retry(context.Background(), st.Retry, func() error {
		return fsys.MkdirAll(dir, 0o755)
	}); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return st, nil
}

// Dir returns the cache root.
func (st *Store) Dir() string { return st.dir }

// FS returns the filesystem the store does its I/O through.
func (st *Store) FS() chaos.FS { return st.fs }

// Quarantined returns the number of corrupted artifacts this handle
// has moved to the quarantine directory.
func (st *Store) Quarantined() int64 { return st.quarantined.Load() }

func (st *Store) logf(format string, args ...any) {
	if st.Log != nil {
		st.Log(format, args...)
	}
}

func (st *Store) path(key string) string {
	return filepath.Join(st.dir, key[:2], key+".json")
}

// quarantine moves a corrupted artifact out of the live tree into
// DIR/quarantine/ (falling back to deletion if even that fails), so it
// is preserved for diagnosis but never read again. Best-effort: the
// caller has already decided the artifact is a miss.
func (st *Store) quarantine(path, detail string) {
	dst := filepath.Join(st.dir, QuarantineDir, filepath.Base(path))
	// Don't clobber earlier evidence: the same key can be corrupted,
	// repaired and corrupted again, and each specimen matters.
	for i := 1; ; i++ {
		if _, err := st.fs.Stat(dst); err != nil {
			break
		}
		dst = filepath.Join(st.dir, QuarantineDir, fmt.Sprintf("%s.%d", filepath.Base(path), i))
	}
	// Quarantine must work on the degraded disk that corrupted the
	// artifact in the first place, so tolerate transient failures.
	err := chaos.Retry(context.Background(), st.Retry, func() error {
		if err := st.fs.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		return st.fs.Rename(path, dst)
	})
	if err != nil {
		st.fs.Remove(path)
	}
	st.quarantined.Add(1)
	st.logf("store: quarantined %s (%s)", path, detail)
}

// readEntry reads and structurally validates the entry file for a
// key: JSON must parse, the version must match and the checksum must
// cover spec+result. A missing file is (zero, false) with corrupt ==
// false; a present-but-damaged file is quarantined and reported with
// corrupt == true. A version mismatch is a legitimate miss (format
// drift), never quarantined.
func (st *Store) readEntry(key string) (e entry, ok, corrupt bool) {
	path := st.path(key)
	var data []byte
	err := chaos.Retry(context.Background(), st.Retry, func() error {
		var rerr error
		data, rerr = st.fs.ReadFile(path)
		return rerr
	})
	if err != nil {
		return entry{}, false, false
	}
	if err := json.Unmarshal(data, &e); err != nil {
		st.quarantine(path, "undecodable entry: "+err.Error())
		return entry{}, false, true
	}
	if e.Version != Version {
		return entry{}, false, false // format drift: invalidated, not corrupt
	}
	specJSON, _ := json.Marshal(e.Spec)
	if entrySum(specJSON, e.Result) != e.Sum {
		st.quarantine(path, "checksum mismatch")
		return entry{}, false, true
	}
	return e, true, false
}

// Get looks the spec's verdict up. On a hit it returns the decoded
// result plus the exact stored result bytes (so cached verdicts can be
// served byte-identically to freshly computed ones). Version
// mismatches, spec mismatches and unreadable or corrupted entries are
// misses, not errors; corrupted entries are additionally quarantined.
func (st *Store) Get(spec JobSpec) (*explore.Result, []byte, bool) {
	c := spec.Canonical()
	e, ok, _ := st.readEntry(c.Key())
	if !ok {
		return nil, nil, false
	}
	want, _ := json.Marshal(c)
	got, _ := json.Marshal(e.Spec.Canonical())
	if string(want) != string(got) {
		return nil, nil, false // hash collision or stale canonicalization
	}
	var res explore.Result
	if err := json.Unmarshal(e.Result, &res); err != nil {
		return nil, nil, false
	}
	return &res, []byte(e.Result), true
}

// Put persists the result under the spec's key, atomically, and
// returns the exact result bytes written (the same bytes every later
// Get returns). Result and entry are stored as compact deterministic
// JSON — compact so the raw result passes through the entry wrapper
// verbatim (an indented wrapper would re-indent it) — so identical
// results, e.g. the same job explored at different worker counts,
// round-trip byte-identically. Transient write failures are retried
// under st.Retry; the returned error, if any, is classifiable with
// chaos.Classify.
func (st *Store) Put(spec JobSpec, res *explore.Result) ([]byte, error) {
	c := spec.Canonical()
	raw, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("store: marshal result: %v", err)
	}
	specJSON, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("store: marshal spec: %v", err)
	}
	data, err := json.Marshal(entry{Version: Version, Spec: c, Sum: entrySum(specJSON, raw), Result: raw})
	if err != nil {
		return nil, fmt.Errorf("store: marshal entry: %v", err)
	}
	path := st.path(c.Key())
	err = chaos.Retry(context.Background(), st.Retry, func() error {
		return st.writeAtomic(path, append(data, '\n'))
	})
	if err != nil {
		st.logf("store: put %s failed: %s", c.Key()[:12], chaos.Describe(err))
		return nil, fmt.Errorf("store: %w", err)
	}
	return raw, nil
}

// writeAtomic lands data at path via temp file + fsync + rename in the
// same directory: a crash or injected fault at any point leaves either
// the previous content or the new content, never a torn file.
func (st *Store) writeAtomic(path string, data []byte) error {
	if err := st.fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := st.fs.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		st.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		// Failed fsync means the bytes may not be durable: the temp file
		// is poison, not a candidate for rename.
		tmp.Close()
		st.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		st.fs.Remove(tmp.Name())
		return err
	}
	if err := st.fs.Rename(tmp.Name(), path); err != nil {
		st.fs.Remove(tmp.Name())
		return err
	}
	return nil
}

// GetByKey reads the entry stored under a content key directly —
// the serving layer evicts completed in-memory jobs and re-hydrates
// them from the store by their job id, which IS the key. The embedded
// spec must canonicalize back to the key (and the version and checksum
// must match); anything else reads as a miss.
func (st *Store) GetByKey(key string) (JobSpec, *explore.Result, []byte, bool) {
	if len(key) < 3 {
		return JobSpec{}, nil, nil, false
	}
	e, ok, _ := st.readEntry(key)
	if !ok {
		return JobSpec{}, nil, nil, false
	}
	c := e.Spec.Canonical()
	if c.Key() != key {
		return JobSpec{}, nil, nil, false
	}
	var res explore.Result
	if json.Unmarshal(e.Result, &res) != nil {
		return JobSpec{}, nil, nil, false
	}
	return c, &res, []byte(e.Result), true
}

// Len counts the complete entries currently in the store (a
// diagnostic; it does not validate them). Quarantined artifacts are
// not entries and are excluded.
func (st *Store) Len() int {
	n := 0
	quarantine := filepath.Join(st.dir, QuarantineDir)
	filepath.WalkDir(st.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && d.IsDir() && path == quarantine {
			return filepath.SkipDir
		}
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") && !strings.HasPrefix(filepath.Base(path), ".") {
			n++
		}
		return nil
	})
	return n
}

// GCTemp removes abandoned temp files left anywhere under the cache
// root by a killed process — .put-* (verdict writes), .ckpt-*
// (checkpoint writes) and *.tmp — and returns the number removed.
// Temp files are invisible to every read path, so this is pure
// hygiene and safe to run concurrently with live jobs only at
// startup (a live Put's in-flight temp file could be swept).
func (st *Store) GCTemp() int {
	removed := 0
	quarantine := filepath.Join(st.dir, QuarantineDir)
	filepath.WalkDir(st.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if path == quarantine {
				return filepath.SkipDir
			}
			return nil
		}
		base := filepath.Base(path)
		if strings.HasPrefix(base, ".put-") || strings.HasPrefix(base, ".ckpt-") || strings.HasSuffix(base, ".tmp") {
			if st.fs.Remove(path) == nil {
				removed++
			}
		}
		return nil
	})
	return removed
}
