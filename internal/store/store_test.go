package store_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/store"
)

func open(t *testing.T) *store.DirStore {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func smallSpec() store.JobSpec {
	return store.JobSpec{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "legit"}
}

// TestKeyCanonicalization: every alias and default spelling of the
// same job must share a content key; semantic differences must not.
func TestKeyCanonicalization(t *testing.T) {
	base := smallSpec()
	same := []store.JobSpec{
		{Alg: "CC2", Topo: " ring:3 ", Daemon: "central", Init: "legit"},
		{Alg: "cc2", Topo: "ring:3", Daemon: "Central", Init: "legit", MaxStates: 2_000_000},
		{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "legit", MaxBranch: 1 << 16, MaxViolations: 3},
		// Seed and RandomInits are irrelevant off the random families.
		{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "legit", Seed: 99, RandomInits: 7},
	}
	for i, s := range same {
		if s.Key() != base.Key() {
			t.Errorf("spec %d: key %s != base %s", i, s.Key(), base.Key())
		}
	}
	aliased := [][2]store.JobSpec{
		{{Alg: "cc2", Topo: "ring:3", Daemon: "sync"}, {Alg: "cc2", Topo: "ring:3", Daemon: "synchronous"}},
		{{Alg: "cc2", Topo: "ring:3", Daemon: "all"}, {Alg: "cc2", Topo: "ring:3", Daemon: "all-subsets"}},
		{{Alg: "cc2", Topo: "ring:3", Daemon: ""}, {Alg: "cc2", Topo: "ring:3", Daemon: "all-subsets"}},
		{{Alg: "cc2", Topo: "figure3", Daemon: "central"}, {Alg: "cc2", Topo: "fig3", Daemon: "central"}},
		{{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: ""}, {Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "cc-full"}},
		{{Alg: "dining", Topo: "ring:3", Daemon: "central", Init: ""}, {Alg: "dining", Topo: "ring:3", Daemon: "central", Init: "legit"}},
		{{Alg: "cc2", Topo: "ring:3", Daemon: "central", Mutation: "none"}, {Alg: "cc2", Topo: "ring:3", Daemon: "central"}},
		// The convergence flag is meaningless off the synchronous mode.
		{{Alg: "cc2", Topo: "ring:3", Daemon: "central", NoConverge: true}, {Alg: "cc2", Topo: "ring:3", Daemon: "central"}},
	}
	for i, pair := range aliased {
		if pair[0].Key() != pair[1].Key() {
			t.Errorf("alias pair %d: keys differ:\n%+v\n%+v", i, pair[0].Canonical(), pair[1].Canonical())
		}
	}
	distinct := []store.JobSpec{
		{Alg: "cc1", Topo: "ring:3", Daemon: "central", Init: "legit"},
		{Alg: "cc2", Topo: "ring:4", Daemon: "central", Init: "legit"},
		{Alg: "cc2", Topo: "ring:3", Daemon: "synchronous", Init: "legit"},
		{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "cc"},
		{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "legit", MaxStates: 100},
		{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "legit", Symmetry: true},
		{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "legit", Mutation: "leave-early"},
		{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "random", Seed: 2},
		{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "random", Seed: 3},
	}
	seen := map[string]int{base.Key(): -1}
	for i, s := range distinct {
		k := s.Key()
		if j, dup := seen[k]; dup {
			t.Errorf("distinct specs %d and %d share a key", i, j)
		}
		seen[k] = i
	}
	// NoConverge IS meaningful under synchronous branching.
	a := store.JobSpec{Alg: "cc2", Topo: "ring:3", Daemon: "synchronous", NoConverge: true}
	b := store.JobSpec{Alg: "cc2", Topo: "ring:3", Daemon: "synchronous"}
	if a.Key() == b.Key() {
		t.Error("synchronous NoConverge must change the key")
	}
}

// TestRoundTripByteIdentical: Put → Get returns the decoded result,
// the exact bytes written, and re-persisting the decoded result writes
// the same bytes again — the property that makes cached verdicts
// indistinguishable from fresh ones on the wire.
func TestRoundTripByteIdentical(t *testing.T) {
	st := open(t)
	spec := smallSpec()
	res, err := campaign.Execute(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	raw1, err := st.Put(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	got, raw2, ok := st.Get(spec)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("Get bytes differ from Put bytes")
	}
	if got.Verdict() != res.Verdict() || got.States != res.States || got.Transitions != res.Transitions {
		t.Fatalf("decoded result differs: %s vs %s", got.Summary(), res.Summary())
	}
	raw3, err := st.Put(spec, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw3) {
		t.Fatal("re-persisting the decoded result is not byte-identical")
	}
	// An alias spelling reads the same entry.
	if _, raw4, ok := st.Get(store.JobSpec{Alg: "CC2", Topo: "ring:3", Daemon: "central", Init: "legit", Seed: 42}); !ok || !bytes.Equal(raw1, raw4) {
		t.Fatal("alias spelling missed the cached entry")
	}
}

// TestRoundTripWithTraces: counterexample traces (selections, keys,
// rendered configs) survive the JSON round trip byte-identically.
func TestRoundTripWithTraces(t *testing.T) {
	st := open(t)
	spec := store.JobSpec{Alg: "cc2", Topo: "ring:3", Daemon: "central", Init: "legit", Mutation: "leave-early", MaxViolations: 2}
	res, err := campaign.Execute(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok() {
		t.Fatal("mutated run found no violations — nothing to round-trip")
	}
	raw1, err := st.Put(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	got, raw2, ok := st.Get(spec)
	if !ok || !bytes.Equal(raw1, raw2) {
		t.Fatal("trace round trip not byte-identical")
	}
	if len(got.Violations) != len(res.Violations) || len(got.Violations[0].Trace) != len(res.Violations[0].Trace) {
		t.Fatal("traces lost in round trip")
	}
}

// TestGetByKey: the key alone recovers the entry (the serving layer's
// eviction/re-hydration path), with the same bytes, and rejects keys
// whose entry does not hash back.
func TestGetByKey(t *testing.T) {
	st := open(t)
	spec := smallSpec()
	res, err := campaign.Execute(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := st.Put(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	gotSpec, gotRes, raw2, ok := st.GetByKey(spec.Key())
	if !ok || !bytes.Equal(raw, raw2) || gotRes.States != res.States {
		t.Fatal("GetByKey did not recover the entry byte-identically")
	}
	if gotSpec.Key() != spec.Key() {
		t.Fatal("GetByKey returned a foreign spec")
	}
	if _, _, _, ok := st.GetByKey("deadbeef00"); ok {
		t.Fatal("unknown key served")
	}
	if _, _, _, ok := st.GetByKey(""); ok {
		t.Fatal("empty key served")
	}
	// An entry copied under the wrong key must not be served.
	wrong := store.JobSpec{Alg: "cc1", Topo: "ring:3", Daemon: "central", Init: "legit"}.Key()
	src, _ := os.ReadFile(entryPath(t, st, spec))
	dst := filepath.Join(st.Dir(), wrong[:2], wrong+".json")
	os.MkdirAll(filepath.Dir(dst), 0o755)
	os.WriteFile(dst, src, 0o644)
	if _, _, _, ok := st.GetByKey(wrong); ok {
		t.Fatal("entry under a mismatched key served")
	}
}

func entryPath(t *testing.T, st store.Interface, spec store.JobSpec) string {
	t.Helper()
	key := spec.Key()
	return filepath.Join(st.Dir(), key[:2], key+".json")
}

// TestVersionInvalidation: an entry written by a different format
// version is a miss, not an error.
func TestVersionInvalidation(t *testing.T) {
	st := open(t)
	spec := smallSpec()
	res, err := campaign.Execute(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(spec, res); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, st, spec)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := bytes.Replace(data, []byte(fmt.Sprintf(`"version":%d`, store.Version)), []byte(`"version":999`), 1)
	if bytes.Equal(mangled, data) {
		t.Fatal("version field not found in entry")
	}
	if err := os.WriteFile(path, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Get(spec); ok {
		t.Fatal("version-mismatched entry served as a hit")
	}
}

// TestSpecMismatchInvalidation: an entry whose embedded spec is not the
// requested one (hash collision, canonicalization drift) is a miss.
func TestSpecMismatchInvalidation(t *testing.T) {
	st := open(t)
	spec := smallSpec()
	res, err := campaign.Execute(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(spec, res); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, st, spec)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]json.RawMessage
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	other := store.JobSpec{Alg: "cc1", Topo: "ring:3", Daemon: "central", Init: "legit"}.Canonical()
	e["spec"], _ = json.Marshal(other)
	mangled, _ := json.Marshal(e)
	if err := os.WriteFile(path, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Get(spec); ok {
		t.Fatal("spec-mismatched entry served as a hit")
	}
}

// TestCorruptedEntries: garbage, truncation and unparseable results
// all read as misses, and a fresh Put repairs the entry.
func TestCorruptedEntries(t *testing.T) {
	st := open(t)
	spec := smallSpec()
	res, err := campaign.Execute(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := st.Put(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, st, spec)
	good, _ := os.ReadFile(path)
	for name, data := range map[string][]byte{
		"garbage":    []byte("not json at all"),
		"empty":      {},
		"truncated":  good[:len(good)/2],
		"bad-result": []byte(`{"version": 1, "spec": ` + string(mustJSON(spec.Canonical())) + `, "result": {"Violations": "not-an-array"}}`),
	} {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := st.Get(spec); ok {
			t.Fatalf("%s entry served as a hit", name)
		}
	}
	raw2, err := st.Put(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("repair Put not byte-identical")
	}
	if _, _, ok := st.Get(spec); !ok {
		t.Fatal("repaired entry still missing")
	}
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}

// TestMissAndErrors: a fresh store misses; Open rejects an empty dir
// path; no temp files survive Puts.
func TestMissAndErrors(t *testing.T) {
	st := open(t)
	if _, _, ok := st.Get(smallSpec()); ok {
		t.Fatal("fresh store claims a hit")
	}
	if _, err := store.Open(""); err == nil {
		t.Fatal("Open(\"\") should fail")
	}
	res, err := campaign.Execute(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent Puts of the same entry must not tear it.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := st.Put(smallSpec(), res); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if _, _, ok := st.Get(smallSpec()); !ok {
		t.Fatal("entry missing after concurrent Puts")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	filepath.WalkDir(st.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(filepath.Base(path), ".put-") {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
}
