package token

// White-box tests for the active-chain circulation: each correction and
// handover action against hand-built states on a small path 0-1-2
// (rooted at 0 after stabilization).

import (
	"testing"
)

func legitPath3() (*Module, []State) {
	m := New(pathAdj(3), identityIDs(3))
	cfg := make([]State, 3)
	for p := range cfg {
		cfg[p] = m.LegitState(p)
	}
	return m, cfg
}

func view(cfg []State) View {
	return func(q int) *State { return &cfg[q] }
}

func TestChainFixRootReactivates(t *testing.T) {
	m, cfg := legitPath3()
	cfg[0].A = false // fault: the root lost its chain anchor
	v := view(cfg)
	if !m.ChainFixEnabled(v, 0) {
		t.Fatal("inactive root must be fixable")
	}
	next := cfg[0].Clone()
	m.ChainFixBody(v, 0, &next)
	if !next.A || next.H != Hold {
		t.Fatalf("root fix produced %+v", next)
	}
	// The fix parks the root at end-of-wave so the next release starts a
	// clean wave.
	if next.Des != -1 {
		t.Fatalf("root fix should not designate a child yet: %+v", next)
	}
}

func TestChainFixUnsupportedDies(t *testing.T) {
	m, cfg := legitPath3()
	// Fault: process 2 claims to be active although its parent (1) is
	// inactive — a spurious token.
	cfg[2].A = true
	cfg[2].H = Hold
	v := view(cfg)
	if m.Supported(v, 2) {
		t.Fatal("2 must be unsupported")
	}
	if !m.ChainFixEnabled(v, 2) {
		t.Fatal("unsupported active process must be fixable")
	}
	next := cfg[2].Clone()
	m.ChainFixBody(v, 2, &next)
	if next.A {
		t.Fatal("unsupported active process must deactivate")
	}
}

func TestChainFixCascade(t *testing.T) {
	// A whole spurious chain 1→2 (1 active Sent designating 2, 2 active)
	// with inactive root support: 1 is unsupported, dies first; then 2
	// loses support and dies — without any token movement.
	m, cfg := legitPath3()
	cfg[0].A = false // root anchor broken too (fixed independently)
	cfg[1].A, cfg[1].H, cfg[1].Des, cfg[1].Vis = true, Sent, 2, 0
	cfg[2].A, cfg[2].H = true, Hold
	v := view(cfg)
	if m.Supported(v, 1) {
		t.Fatal("1 must be unsupported (parent 0 inactive)")
	}
	if !m.Supported(v, 2) {
		t.Fatal("2 is (transiently) supported by 1")
	}
	next := cfg[1].Clone()
	m.ChainFixBody(v, 1, &next)
	cfg[1] = next
	if m.Supported(v, 2) {
		t.Fatal("after 1 dies, 2 must lose support")
	}
	if !m.ChainFixEnabled(v, 2) {
		t.Fatal("2 must now be fixable")
	}
}

func TestChainFixSentStuck(t *testing.T) {
	m, cfg := legitPath3()
	// Corrupt: root Sent with no designated child.
	cfg[0].H = Sent
	cfg[0].Vis = 1 // past its single child
	cfg[0].Des = -1
	v := view(cfg)
	if !m.ChainFixEnabled(v, 0) {
		t.Fatal("Sent with Des=-1 must be fixable")
	}
	next := cfg[0].Clone()
	m.ChainFixBody(v, 0, &next)
	if next.H != Hold {
		t.Fatal("stuck Sent must revert to Hold")
	}
}

func TestJoinGuardColor(t *testing.T) {
	m, cfg := legitPath3()
	// Root delegates to child 1.
	next := cfg[0].Clone()
	m.ReleaseToken(view(cfg), 0, &next)
	cfg[0] = next
	if cfg[0].H != Sent || cfg[0].Des != 1 {
		t.Fatalf("release did not delegate: %+v", cfg[0])
	}
	v := view(cfg)
	if !m.JoinEnabled(v, 1) {
		t.Fatal("child with fresh color must join")
	}
	// A child already carrying the root's color looks finished: no join,
	// the parent resumes past it instead.
	cfg[1].C = cfg[0].C
	if m.JoinEnabled(v, 1) {
		t.Fatal("same-color child must not join")
	}
	if !m.ResumeEnabled(v, 0) {
		t.Fatal("parent must resume past a finished-looking child")
	}
	// Join and Resume guards are mutually exclusive by color.
	cfg[1].C = 1 - cfg[0].C
	if m.ResumeEnabled(v, 0) {
		t.Fatal("parent must not resume past an unvisited child")
	}
}

func TestJoinBodyInitializesSubtreeVisit(t *testing.T) {
	m, cfg := legitPath3()
	next := cfg[0].Clone()
	m.ReleaseToken(view(cfg), 0, &next)
	cfg[0] = next
	v := view(cfg)
	j := cfg[1].Clone()
	m.JoinBody(v, 1, &j)
	if !j.A || j.H != Hold || j.Vis != 0 || j.Des != 2 || j.C != cfg[0].C {
		t.Fatalf("join produced %+v", j)
	}
}

func TestResumeAdvancesPastChild(t *testing.T) {
	m, cfg := legitPath3()
	// State: root Sent→1; 1 finished (inactive, root color).
	cfg[0].H, cfg[0].Des, cfg[0].Vis = Sent, 1, 0
	cfg[1].C = cfg[0].C
	v := view(cfg)
	if !m.ResumeEnabled(v, 0) {
		t.Fatal("resume must be enabled")
	}
	next := cfg[0].Clone()
	m.ResumeBody(v, 0, &next)
	if next.H != Hold || next.Vis != 1 || next.Des != -1 {
		t.Fatalf("resume produced %+v", next)
	}
}

func TestReleaseEndOfWaveFlipsColor(t *testing.T) {
	m, cfg := legitPath3()
	// Root at end of wave: all children visited.
	cfg[0].Vis, cfg[0].Des = 1, -1
	c0 := cfg[0].C
	next := cfg[0].Clone()
	m.ReleaseToken(view(cfg), 0, &next)
	if next.C == c0 {
		t.Fatal("end-of-wave release must flip the color")
	}
	if next.H != Hold || next.Vis != 0 || next.Des != 1 {
		t.Fatalf("wave restart produced %+v", next)
	}
}

func TestReleaseNonRootReturnsUpward(t *testing.T) {
	m, cfg := legitPath3()
	// Token at leaf 2 (parent 1 Sent→2).
	cfg[0].H, cfg[0].Des, cfg[0].Vis = Sent, 1, 0
	cfg[1].A, cfg[1].H, cfg[1].Des, cfg[1].Vis, cfg[1].C = true, Sent, 2, 0, cfg[0].C
	cfg[2].A, cfg[2].H, cfg[2].C = true, Hold, cfg[0].C
	v := view(cfg)
	if h := m.Holders(cfg); len(h) != 1 || h[0] != 2 {
		t.Fatalf("holders = %v, want [2]", h)
	}
	next := cfg[2].Clone()
	m.ReleaseToken(v, 2, &next)
	if next.A {
		t.Fatal("a finished non-root must deactivate (token returns upward)")
	}
	cfg[2] = next
	// Now the parent resumes (same color, inactive child).
	if !m.ResumeEnabled(view(cfg), 1) {
		t.Fatal("parent must resume after the child returned the token")
	}
}

func TestNormClampsCorruptVisDes(t *testing.T) {
	m, cfg := legitPath3()
	cfg[1].Vis, cfg[1].Des = 99, 0 // junk
	v := view(cfg)
	if !m.NormEnabled(v, 1) {
		t.Fatal("corrupt Vis/Des must be normalizable")
	}
	next := cfg[1].Clone()
	m.NormBody(v, 1, &next)
	// Vertex 1's children = {2}; Vis clamps to 1 (past end), Des -1.
	if next.Vis != 1 || next.Des != -1 {
		t.Fatalf("norm produced %+v", next)
	}
	cfg[1] = next
	if m.NormEnabled(view(cfg), 1) {
		t.Fatal("norm must be idempotent")
	}
}

func TestIsRootFollowsLid(t *testing.T) {
	m, cfg := legitPath3()
	v := view(cfg)
	if !m.IsRoot(v, 0) || m.IsRoot(v, 1) {
		t.Fatal("only vertex 0 is the root")
	}
	// A transient fake root (corrupted Lid) is a root *belief*; leader
	// election kills it.
	cfg[2].Lid = m.ids[2]
	if !m.IsRoot(v, 2) {
		t.Fatal("corrupted process believes itself root")
	}
	if !m.LeaderEnabled(v, 2) {
		t.Fatal("leader election must correct the fake root")
	}
	next := cfg[2].Clone()
	m.LeaderBody(v, 2, &next)
	if next.Lid != 0 || next.Parent != 1 || next.Dist != 2 {
		t.Fatalf("leader election produced %+v", next)
	}
}
