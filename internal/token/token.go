// Package token implements the paper's token-circulation module TC
// (Property 1, §4.1): a self-stabilizing algorithm that, once stabilized,
// maintains a single token visiting every process infinitely often, where
// the "pass" action T is not autonomous — it fires only when the
// enclosing committee-coordination layer executes ReleaseToken.
//
// Following the paper's suggestion, TC is the composition of
//
//  1. a self-stabilizing leader election with BFS spanning-tree
//     construction (minimum identifier wins; fake identifiers are killed
//     by a distance bound of n, in the style of Dolev–Israeli–Moran and
//     Arora–Gouda [21–23]), and
//  2. a self-stabilizing depth-first token circulation on the stabilized
//     tree (in the spirit of [24–27]) built on a root-anchored *active
//     chain*: every process publishes an "active" bit A, a hold/sent flag,
//     a visited-children counter with the *designated child* pointer Des
//     (published so the one-hop-neighbor model suffices), and a wave
//     color. The token is the unique HOLDing tip of the chain of
//     SENT-designations starting at the root; the root descends into its
//     children in order, giving an Euler-tour traversal (an internal
//     process holds the token deg+1 times per wave).
//
// The crucial property — the reason a Dijkstra-style token ring is *not*
// usable here — is that illegitimate tokens are destroyed **autonomously**:
// an active process whose parent does not designate it is locally
// detectable and deactivates, cascading away every spurious chain without
// any token movement. Hence TC stabilizes "independently of the
// activations of action T" exactly as Property 1 requires, even while
// the committee-coordination layer freezes the real token for
// arbitrarily long (the fair algorithm CC2 retains the token until its
// meeting convenes).
package token

import (
	"fmt"
	"math/rand"
	"sort"
)

// Hold/Sent values of the chain flag.
const (
	// Hold: the process currently holds the token (if active).
	Hold uint8 = iota
	// Sent: the process delegated the token to its designated child.
	Sent
)

// State is the TC-state of one process.
type State struct {
	// Leader election layer.
	Lid    int // believed leader identifier
	Dist   int // believed distance (hops) to the leader
	Parent int // parent vertex index on the BFS tree; -1 for the root

	// Circulation layer.
	A   bool  // on the active chain
	H   uint8 // Hold or Sent
	Vis int   // number of children already visited this wave
	Des int   // designated child (published; = children[Vis] or -1)
	C   uint8 // wave color (0/1)
}

// Clone returns a copy (State has value semantics).
func (s State) Clone() State { return s }

// Module holds the static topology and identifier information of the
// underlying communication network. The chBuf scratch makes Children
// allocation-free on the simulation hot path; a Module must therefore
// not be shared by concurrently running engines (each core.Alg builds
// its own).
type Module struct {
	n   int
	adj [][]int // sorted neighbor lists of G
	ids []int   // unique identifiers; Lid ranges over these

	chBuf []int // Children scratch, overwritten by every call
}

// View gives read access to the TC-state of any process (pointers into
// the pre-step configuration; callers never mutate through them).
type View func(q int) *State

// New builds a Module for the given adjacency (sorted neighbor lists)
// and identifiers.
func New(adj [][]int, ids []int) *Module {
	if len(ids) != len(adj) {
		panic(fmt.Sprintf("token: %d ids for %d vertices", len(ids), len(adj)))
	}
	return &Module{n: len(adj), adj: adj, ids: ids}
}

// N returns the number of processes.
func (m *Module) N() int { return m.n }

// isNeighbor reports whether u ∈ N(p).
func (m *Module) isNeighbor(p, u int) bool {
	for _, q := range m.adj[p] {
		if q == u {
			return true
		}
	}
	return false
}

// --- Leader election --------------------------------------------------------

// bestLE computes the correct (Lid, Dist, Parent) triple for p: the
// lexicographically least (lid, dist) among p's own candidacy (id_p, 0)
// and (Lid_q, Dist_q + 1) over neighbors q with Dist_q + 1 < n. Fake
// identifiers die because their distance support grows past the bound.
func (m *Module) bestLE(v View, p int) (lid, dist, parent int) {
	lid, dist, parent = m.ids[p], 0, -1
	for _, q := range m.adj[p] {
		sq := v(q)
		d := sq.Dist + 1
		if d >= m.n || d < 1 {
			continue
		}
		if sq.Lid < lid || (sq.Lid == lid && d < dist) {
			lid, dist, parent = sq.Lid, d, q
		}
	}
	return lid, dist, parent
}

// LeaderEnabled reports whether p's leader-election action is enabled.
func (m *Module) LeaderEnabled(v View, p int) bool {
	lid, dist, parent := m.bestLE(v, p)
	s := v(p)
	return s.Lid != lid || s.Dist != dist || s.Parent != parent
}

// LeaderBody executes the leader-election action into next.
func (m *Module) LeaderBody(v View, p int, next *State) {
	next.Lid, next.Dist, next.Parent = m.bestLE(v, p)
}

// IsRoot reports whether p currently believes itself the leader (after
// stabilization: the minimum identifier of p's component).
func (m *Module) IsRoot(v View, p int) bool { return v(p).Lid == m.ids[p] }

// Children returns p's current children on the BFS tree: neighbors whose
// Parent pointer designates p, ascending (the DFS visit order). The
// returned slice is Module-owned scratch, valid until the next call.
func (m *Module) Children(v View, p int) []int {
	ch := m.chBuf[:0]
	for _, q := range m.adj[p] {
		if v(q).Parent == p {
			ch = append(ch, q)
		}
	}
	m.chBuf = ch
	return ch
}

// --- Circulation: the active chain ------------------------------------------

// expected returns the normalized (Vis, Des) pair for p given its
// current children list: Vis clamped into [0, δ] and Des = children[Vis]
// (or -1 past the end).
func (m *Module) expected(v View, p int) (vis, des int) {
	ch := m.Children(v, p)
	vis = v(p).Vis
	if vis < 0 {
		vis = 0
	}
	if vis > len(ch) {
		vis = len(ch)
	}
	if vis < len(ch) {
		return vis, ch[vis]
	}
	return vis, -1
}

// NormEnabled reports whether p's (Vis, Des) pair is inconsistent with
// its children list (corruption, or the tree changed under it).
func (m *Module) NormEnabled(v View, p int) bool {
	vis, des := m.expected(v, p)
	return v(p).Vis != vis || v(p).Des != des
}

// NormBody repairs (Vis, Des).
func (m *Module) NormBody(v View, p int, next *State) {
	next.Vis, next.Des = m.expected(v, p)
}

// Supported reports whether active non-root p is justified by its
// parent: the parent is active, has delegated (Sent), and designates p.
func (m *Module) Supported(v View, p int) bool {
	u := v(p).Parent
	if u < 0 || !m.isNeighbor(p, u) {
		return false
	}
	su := v(u)
	return su.A && su.H == Sent && su.Des == p
}

// ChainFixEnabled is the autonomous correction action of the circulation
// layer; it destroys every spurious token without moving the real one:
//   - the root (re)activates itself if inactive;
//   - an active non-root without parental support deactivates (this
//     cascades down any illegitimate chain);
//   - an active process stuck in Sent with no designated child reverts
//     to Hold (the token reappears at the chain tip).
func (m *Module) ChainFixEnabled(v View, p int) bool {
	s := v(p)
	if m.IsRoot(v, p) {
		if !s.A {
			return true
		}
	} else if s.A && !m.Supported(v, p) {
		return true
	}
	return s.A && s.H == Sent && s.Des == -1
}

// ChainFixBody executes the correction.
func (m *Module) ChainFixBody(v View, p int, next *State) {
	s := v(p)
	switch {
	case m.IsRoot(v, p) && !s.A:
		next.A = true
		next.H = Hold
		next.Vis = len(m.Children(v, p)) // end of wave; next release restarts
		next.Des = -1
	case !m.IsRoot(v, p) && s.A && !m.Supported(v, p):
		next.A = false
	case s.A && s.H == Sent && s.Des == -1:
		next.H = Hold
	}
}

// JoinEnabled: inactive p joins the wave when its parent designates it
// with a fresh color. The token moves down — but only because the parent
// previously executed ReleaseToken (which set Sent).
func (m *Module) JoinEnabled(v View, p int) bool {
	s := v(p)
	if s.A {
		return false
	}
	u := s.Parent
	if u < 0 || !m.isNeighbor(p, u) {
		return false
	}
	su := v(u)
	return su.A && su.H == Sent && su.Des == p && s.C != su.C
}

// JoinBody activates p at the start of its subtree visit.
func (m *Module) JoinBody(v View, p int, next *State) {
	u := v(p).Parent
	next.A = true
	next.H = Hold
	next.Vis = 0
	ch := m.Children(v, p)
	if len(ch) > 0 {
		next.Des = ch[0]
	} else {
		next.Des = -1
	}
	next.C = v(u).C
}

// ResumeEnabled: p delegated to child Des, and that child completed its
// subtree (inactive again, with p's wave color). The token returns to p.
func (m *Module) ResumeEnabled(v View, p int) bool {
	s := v(p)
	if !s.A || s.H != Sent || s.Des < 0 || !m.isNeighbor(p, s.Des) {
		return false
	}
	sq := v(s.Des)
	return !sq.A && sq.C == s.C
}

// ResumeBody advances past the finished child and re-takes the token.
func (m *Module) ResumeBody(v View, p int, next *State) {
	ch := m.Children(v, p)
	vis := v(p).Vis + 1
	if vis > len(ch) {
		vis = len(ch)
	}
	next.Vis = vis
	if vis < len(ch) {
		next.Des = ch[vis]
	} else {
		next.Des = -1
	}
	next.H = Hold
}

// --- The CC-facing interface -------------------------------------------------

// HasToken is the paper's input predicate Token(p): p is the holding tip
// of an active chain. During stabilization several processes may
// transiently satisfy it (the paper explicitly tolerates multiple token
// holders then); after stabilization exactly one process at a time does.
func (m *Module) HasToken(v View, p int) bool {
	s := v(p)
	return s.A && s.H == Hold
}

// ReleaseToken is the paper's ReleaseToken_p statement, executed inside a
// CC action: pass the token onward along the Euler tour. If p has
// unvisited children the token is delegated down (the child's Join
// action completes the handover); if the subtree is finished the token
// returns to the parent (its Resume action completes the handover); the
// root starts a new wave with a flipped color. A no-op if p does not
// hold the token.
func (m *Module) ReleaseToken(v View, p int, next *State) {
	s := v(p)
	if !s.A || s.H != Hold {
		return
	}
	ch := m.Children(v, p)
	vis := s.Vis
	if vis < 0 {
		vis = 0
	}
	if vis < len(ch) {
		next.Vis = vis
		next.Des = ch[vis]
		next.H = Sent
		return
	}
	if m.IsRoot(v, p) {
		// End of wave: flip color, restart, keep the token.
		next.C = 1 - s.C
		next.Vis = 0
		if len(ch) > 0 {
			next.Des = ch[0]
		} else {
			next.Des = -1
		}
		next.H = Hold
		return
	}
	// Subtree finished: return the token upward.
	next.A = false
}

// --- Initial states and diagnostics ------------------------------------------

// RandomState returns an arbitrary (corrupted) TC state for p — the
// adversary's choice after transient faults.
func (m *Module) RandomState(p int, rng *rand.Rand) State {
	s := State{
		Lid:    m.ids[rng.Intn(m.n)],
		Dist:   rng.Intn(m.n + 1),
		Parent: -1,
		A:      rng.Intn(2) == 0,
		H:      uint8(rng.Intn(2)),
		Vis:    rng.Intn(len(m.adj[p]) + 1),
		Des:    -1,
		C:      uint8(rng.Intn(2)),
	}
	if len(m.adj[p]) > 0 {
		if rng.Intn(3) > 0 {
			s.Parent = m.adj[p][rng.Intn(len(m.adj[p]))]
		}
		if rng.Intn(2) == 0 {
			s.Des = m.adj[p][rng.Intn(len(m.adj[p]))]
		}
	}
	return s
}

// LegitState returns the stabilized TC state of p: leader = minimum
// identifier in p's component, BFS tree, token held by the root at the
// start of a fresh wave (root color 1, everyone else 0).
func (m *Module) LegitState(p int) State {
	dist, parent, children := m.bfsFromLeader(p)
	s := State{
		Lid:    m.leaderID(p),
		Dist:   dist[p],
		Parent: parent[p],
		H:      Hold,
		Vis:    0,
		Des:    -1,
		C:      0,
	}
	if len(children[p]) > 0 {
		s.Des = children[p][0]
	}
	if parent[p] == -1 { // root
		s.A = true
		s.C = 1
	}
	return s
}

// leaderID returns the minimum identifier in p's connected component.
func (m *Module) leaderID(p int) int {
	comp := m.component(p)
	best := m.ids[comp[0]]
	for _, v := range comp {
		if m.ids[v] < best {
			best = m.ids[v]
		}
	}
	return best
}

func (m *Module) component(p int) []int {
	seen := make([]bool, m.n)
	stack := []int{p}
	seen[p] = true
	var comp []int
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		comp = append(comp, x)
		for _, u := range m.adj[x] {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return comp
}

// bfsFromLeader computes BFS distances, parents (smallest neighbor at
// dist-1, matching bestLE's tie-break) and children lists from the
// component leader of p.
func (m *Module) bfsFromLeader(p int) (dist, parent []int, children [][]int) {
	leader := -1
	lid := m.leaderID(p)
	for _, v := range m.component(p) {
		if m.ids[v] == lid {
			leader = v
		}
	}
	dist = make([]int, m.n)
	parent = make([]int, m.n)
	children = make([][]int, m.n)
	for v := range dist {
		dist[v] = -1
		parent[v] = -1
	}
	dist[leader] = 0
	queue := []int{leader}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, u := range m.adj[x] {
			if dist[u] == -1 {
				dist[u] = dist[x] + 1
				queue = append(queue, u)
			}
		}
	}
	for _, v := range m.component(p) {
		if v == leader {
			continue
		}
		for _, u := range m.adj[v] {
			if dist[u] >= 0 && dist[u] == dist[v]-1 {
				parent[v] = u // adj sorted: first hit = smallest id neighbor
				break
			}
		}
	}
	for _, v := range m.component(p) {
		if parent[v] >= 0 {
			children[parent[v]] = append(children[parent[v]], v)
		}
	}
	for v := range children {
		sort.Ints(children[v]) // match Children()'s ascending visit order
	}
	return dist, parent, children
}

// Holders returns the processes for which Token holds in cfg (after
// stabilization: at most one per component, and exactly one whenever no
// handover is in flight).
func (m *Module) Holders(cfg []State) []int {
	v := func(q int) *State { return &cfg[q] }
	var out []int
	for p := 0; p < m.n; p++ {
		if m.HasToken(v, p) {
			out = append(out, p)
		}
	}
	return out
}

// Stabilized reports whether the leader election, the (Vis, Des)
// normalization and the chain corrections have all converged — i.e., the
// only remaining TC activity is the legitimate token circulation.
func (m *Module) Stabilized(cfg []State) bool {
	v := func(q int) *State { return &cfg[q] }
	for p := 0; p < m.n; p++ {
		if m.LeaderEnabled(v, p) || m.NormEnabled(v, p) || m.ChainFixEnabled(v, p) {
			return false
		}
	}
	return true
}

// ActiveChain returns the active processes in cfg (diagnostic: after
// stabilization they form the root-anchored path to the token).
func (m *Module) ActiveChain(cfg []State) []int {
	var out []int
	for p := 0; p < m.n; p++ {
		if cfg[p].A {
			out = append(out, p)
		}
	}
	return out
}
