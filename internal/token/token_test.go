package token

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/sim"
)

// tcProgram wraps a Module into a standalone sim.Program. With
// autoRelease, processes release the token whenever they hold it
// (emulating a continuously enabled action T); otherwise the token can
// only be frozen at its holder (the CC2 situation).
func tcProgram(m *Module, autoRelease, randomInit bool) *sim.Program[State] {
	view := func(cfg []State) View {
		return func(q int) *State { return &cfg[q] }
	}
	type tcAct struct {
		name    string
		enabled func(View, int) bool
		body    func(View, int, *State)
	}
	acts := []tcAct{
		{"T", func(v View, p int) bool { return autoRelease && m.HasToken(v, p) },
			func(v View, p int, next *State) { m.ReleaseToken(v, p, next) }},
		{"Resume", m.ResumeEnabled, m.ResumeBody},
		{"Join", m.JoinEnabled, m.JoinBody},
		{"ChainFix", m.ChainFixEnabled, m.ChainFixBody},
		{"Norm", m.NormEnabled, m.NormBody},
		{"LE", m.LeaderEnabled, m.LeaderBody},
	}
	actions := make([]sim.Action[State], len(acts))
	for i, a := range acts {
		a := a
		actions[i] = sim.Action[State]{
			Name:  a.name,
			Guard: func(cfg []State, p int) bool { return a.enabled(view(cfg), p) },
			Body:  func(cfg []State, p int, next *State, _ *rand.Rand) { a.body(view(cfg), p, next) },
		}
	}
	return &sim.Program[State]{
		NumProcs: m.N(),
		Actions:  actions,
		Init: func(p int, rng *rand.Rand) State {
			if randomInit {
				return m.RandomState(p, rng)
			}
			return m.LegitState(p)
		},
	}
}

func pathAdj(n int) [][]int {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			adj[i] = append(adj[i], i-1)
		}
		if i < n-1 {
			adj[i] = append(adj[i], i+1)
		}
	}
	return adj
}

func ringAdj(n int) [][]int {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		a, b := (i+n-1)%n, (i+1)%n
		if a > b {
			a, b = b, a
		}
		if a == b { // n == 2
			adj[i] = []int{a}
			continue
		}
		adj[i] = []int{a, b}
	}
	return adj
}

func identityIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func hgModule(h *hypergraph.H) *Module {
	adj := make([][]int, h.N())
	ids := make([]int, h.N())
	for v := 0; v < h.N(); v++ {
		adj[v] = h.Neighbors(v)
		ids[v] = h.ID(v)
	}
	return New(adj, ids)
}

func TestLegitStateIsStabilizedWithOneToken(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  *Module
	}{
		{"pair", New(pathAdj(2), identityIDs(2))},
		{"path5", New(pathAdj(5), identityIDs(5))},
		{"ring6", New(ringAdj(6), identityIDs(6))},
		{"fig1", hgModule(hypergraph.Figure1())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.mod
			cfg := make([]State, m.N())
			for p := range cfg {
				cfg[p] = m.LegitState(p)
			}
			if !m.Stabilized(cfg) {
				t.Fatal("LegitState must be stabilized")
			}
			if h := m.Holders(cfg); len(h) != 1 || h[0] != 0 {
				t.Fatalf("legit holders = %v, want [0] (the min-id root)", h)
			}
			if chain := m.ActiveChain(cfg); len(chain) != 1 {
				t.Fatalf("legit active chain = %v, want the root only", chain)
			}
		})
	}
}

func TestLegitLeaderIsMinID(t *testing.T) {
	h := hypergraph.CommitteeRing(5)
	h2, err := h.WithIDs([]int{50, 40, 30, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	m := hgModule(h2)
	cfg := make([]State, m.N())
	for p := range cfg {
		cfg[p] = m.LegitState(p)
	}
	for p := range cfg {
		if cfg[p].Lid != 10 {
			t.Fatalf("proc %d Lid=%d, want 10", p, cfg[p].Lid)
		}
	}
	if cfg[3].Parent != -1 || cfg[3].Dist != 0 || !cfg[3].A {
		t.Fatalf("vertex 3 should be the active root: %+v", cfg[3])
	}
}

// runTour collects the token-holder sequence over the given number of
// holder events (skipping in-flight handover steps where no one holds).
func runTour(t *testing.T, e *sim.Engine[State], m *Module, events int) []int {
	t.Helper()
	var seq []int
	guard := 0
	for len(seq) < events {
		holders := m.Holders(e.Config())
		if len(holders) > 1 {
			t.Fatalf("multiple holders %v after stabilization", holders)
		}
		if len(holders) == 1 && (len(seq) == 0 || seq[len(seq)-1] != holders[0]) {
			seq = append(seq, holders[0])
		}
		if e.Step() == nil {
			t.Fatal("token circulation must not terminate under auto-release")
		}
		if guard++; guard > 100000 {
			t.Fatalf("tour did not produce %d events (got %v)", events, seq)
		}
	}
	return seq
}

func TestEulerTourVisitsEveryoneInOrder(t *testing.T) {
	// Path 0-1-2-3 rooted at 0: the DFS wave visits
	// 0 1 2 3 2 1 0 | 0 1 2 3 ... (internal nodes deg times plus returns).
	m := New(pathAdj(4), identityIDs(4))
	e := sim.NewEngine(tcProgram(m, true, false), sim.Synchronous{}, 1)
	seq := runTour(t, e, m, 12)
	counts := map[int]int{}
	for _, p := range seq[:6] { // one full wave on a 4-path has 6 holder events
		counts[p]++
	}
	for p := 0; p < 4; p++ {
		if counts[p] == 0 {
			t.Fatalf("process %d not visited in one wave: %v", p, seq)
		}
	}
	// Endpoint 3 once, interior 1 and 2 twice, root 0 once per wave
	// (plus the restart hold at wave end, attributed to the next wave).
	if counts[3] != 1 || counts[1] != 2 || counts[2] != 2 {
		t.Fatalf("visit counts %v over %v", counts, seq)
	}
}

func TestConvergenceFromRandomStates(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  *Module
	}{
		{"path7", New(pathAdj(7), identityIDs(7))},
		{"ring8", New(ringAdj(8), identityIDs(8))},
		{"fig1", hgModule(hypergraph.Figure1())},
		{"fig3", hgModule(hypergraph.Figure3())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				m := tc.mod
				e := sim.NewEngine(tcProgram(m, true, true), &sim.WeaklyFair{MaxAge: 4}, seed)
				limit := 400 * m.N()
				ok := e.RunUntil(limit, func(cfg []State) bool {
					return m.Stabilized(cfg) && len(m.Holders(cfg)) == 1
				})
				if !ok {
					t.Fatalf("seed %d: not stabilized in %d steps (holders=%v stab=%v)",
						seed, limit, m.Holders(e.Config()), m.Stabilized(e.Config()))
				}
				// Closure: at most one holder from now on.
				for i := 0; i < 80; i++ {
					e.Step()
					if got := m.Holders(e.Config()); len(got) > 1 {
						t.Fatalf("seed %d: holders drifted to %v after stabilization", seed, got)
					}
				}
			}
		})
	}
}

func TestSpuriousTokensDieWithoutReleases(t *testing.T) {
	// Property 1's key requirement: TC stabilizes *independently of the
	// activations of T*. With releases disabled entirely (frozen holders),
	// spurious active chains must still be destroyed autonomously,
	// leaving at most the root-anchored chain.
	for seed := int64(0); seed < 8; seed++ {
		m := hgModule(hypergraph.Figure1())
		e := sim.NewEngine(tcProgram(m, false, true), &sim.WeaklyFair{MaxAge: 4}, seed)
		e.Run(3000)
		if !e.Terminal() {
			t.Fatalf("seed %d: frozen-token system should quiesce", seed)
		}
		cfg := e.Config()
		if !m.Stabilized(cfg) {
			t.Fatalf("seed %d: not stabilized at quiescence", seed)
		}
		holders := m.Holders(cfg)
		if len(holders) != 1 {
			t.Fatalf("seed %d: quiescent holders = %v, want exactly 1", seed, holders)
		}
		// The surviving chain is root-anchored: root is active and every
		// active non-root is supported by its parent.
		v := func(q int) *State { return &cfg[q] }
		for _, p := range m.ActiveChain(cfg) {
			if !m.IsRoot(v, p) && !m.Supported(v, p) {
				t.Fatalf("seed %d: active process %d unsupported at quiescence", seed, p)
			}
		}
	}
}

func TestEveryProcessHoldsTokenInfinitelyOften(t *testing.T) {
	m := hgModule(hypergraph.Figure1())
	e := sim.NewEngine(tcProgram(m, true, true), &sim.WeaklyFair{MaxAge: 4}, 99)
	ok := e.RunUntil(5000, func(cfg []State) bool {
		return m.Stabilized(cfg) && len(m.Holders(cfg)) == 1
	})
	if !ok {
		t.Fatal("did not stabilize")
	}
	counts := make([]int, m.N())
	prev := -1
	for i := 0; i < 200*m.N(); i++ {
		if h := m.Holders(e.Config()); len(h) == 1 && h[0] != prev {
			counts[h[0]]++
			prev = h[0]
		}
		e.Step()
	}
	for p, c := range counts {
		if c < 3 {
			t.Fatalf("process %d held the token only %d times: %v", p, c, counts)
		}
	}
}

func TestFrozenHolderKeepsTokenForever(t *testing.T) {
	m := New(pathAdj(5), identityIDs(5))
	e := sim.NewEngine(tcProgram(m, false, false), sim.Synchronous{}, 1)
	if !e.Terminal() {
		t.Fatal("legit config without releases must be terminal")
	}
	if h := m.Holders(e.Config()); len(h) != 1 {
		t.Fatalf("holders = %v", h)
	}
}

func TestReleaseHandoverDownAndUp(t *testing.T) {
	// Manual walk on a 3-path rooted at 0: release at root delegates to
	// child 1; Join moves the token to 1; and so on down to 2 and back.
	m := New(pathAdj(3), identityIDs(3))
	e := sim.NewEngine(tcProgram(m, true, false), sim.Synchronous{}, 1)
	want := []int{0, 1, 2, 1, 0, 0} // Euler tour holder sequence (root restart repeats 0)
	seq := runTour(t, e, m, 6)
	for i := range want[:5] {
		if seq[i] != want[i] {
			t.Fatalf("holder sequence = %v, want prefix %v", seq, want[:5])
		}
	}
}

func TestReleaseNoopWithoutToken(t *testing.T) {
	m := New(pathAdj(3), identityIDs(3))
	cfg := make([]State, 3)
	for p := range cfg {
		cfg[p] = m.LegitState(p)
	}
	v := func(q int) *State { return &cfg[q] }
	next := cfg[1].Clone()
	m.ReleaseToken(v, 1, &next) // proc 1 does not hold the token
	if next != cfg[1] {
		t.Fatal("ReleaseToken without the token must be a no-op")
	}
}

func TestIsolatedVertexAlwaysHasToken(t *testing.T) {
	m := New([][]int{nil}, []int{7})
	cfg := []State{m.LegitState(0)}
	v := func(q int) *State { return &cfg[q] }
	if !m.HasToken(v, 0) {
		t.Fatal("singleton component root must hold its token")
	}
	next := cfg[0].Clone()
	m.ReleaseToken(v, 0, &next) // release = wave restart; token stays
	cfg[0] = next
	if !m.HasToken(v, 0) {
		t.Fatal("singleton release must keep the token")
	}
}

func TestChildrenComputation(t *testing.T) {
	m := New(pathAdj(4), identityIDs(4))
	cfg := make([]State, 4)
	for p := range cfg {
		cfg[p] = m.LegitState(p)
	}
	v := func(q int) *State { return &cfg[q] }
	if ch := m.Children(v, 0); len(ch) != 1 || ch[0] != 1 {
		t.Fatalf("children(0) = %v", ch)
	}
	if ch := m.Children(v, 3); len(ch) != 0 {
		t.Fatalf("children(3) = %v", ch)
	}
}

func TestDisconnectedComponentsEachGetAToken(t *testing.T) {
	// Two disjoint pairs: each component elects its own leader and runs
	// its own token.
	adj := [][]int{{1}, {0}, {3}, {2}}
	m := New(adj, identityIDs(4))
	e := sim.NewEngine(tcProgram(m, true, true), &sim.WeaklyFair{MaxAge: 4}, 5)
	ok := e.RunUntil(2000, func(cfg []State) bool {
		if !m.Stabilized(cfg) {
			return false
		}
		h := m.Holders(cfg)
		left, right := 0, 0
		for _, p := range h {
			if p < 2 {
				left++
			} else {
				right++
			}
		}
		return left == 1 && right == 1
	})
	if !ok {
		t.Fatalf("components did not stabilize to one token each: %v", m.Holders(e.Config()))
	}
}

func TestConvergenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		h := hypergraph.RandomMixed(n, n-1+rng.Intn(4), 3, rng)
		m := hgModule(h)
		e := sim.NewEngine(tcProgram(m, true, true), &sim.WeaklyFair{MaxAge: 4}, seed)
		return e.RunUntil(600*n, func(cfg []State) bool {
			return m.Stabilized(cfg) && len(m.Holders(cfg)) == 1
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidatesIDs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched ids must panic")
		}
	}()
	New(pathAdj(3), []int{1, 2})
}
